package addr

import (
	"math/rand"
	"testing"
)

// roundtripGeometries is a spread of valid configurations: the paper
// setup, degenerate 1×1 subdivisions, multi-channel/multi-rank systems,
// and maximal subdivisions (SAGs == Rows would be legal too, but 64×64
// on a small bank already exercises every field width).
func roundtripGeometries() []Geometry {
	paper := PaperGeometry()
	small := Geometry{Channels: 2, Ranks: 2, Banks: 4, Rows: 256, Cols: 16, LineBytes: 64, SAGs: 8, CDs: 4}
	maxSub := Geometry{Channels: 1, Ranks: 1, Banks: 2, Rows: 64, Cols: 64, LineBytes: 64, SAGs: 64, CDs: 64}
	flat := Geometry{Channels: 1, Ranks: 1, Banks: 8, Rows: 1024, Cols: 32, LineBytes: 64, SAGs: 1, CDs: 1}
	return []Geometry{paper, small, maxSub, flat}
}

// TestMapperRoundTrip fuzzes, for every interleave and a spread of
// geometries, the full translation chain: a line-aligned physical
// address decodes to an in-range Location, the Location projects to
// in-range (SAG, CD) tile coordinates, the row and column reconstruct
// exactly from their (tile, index-within-tile) split, and encoding the
// Location returns the original address.
func TestMapperRoundTrip(t *testing.T) {
	const trials = 20_000
	rng := rand.New(rand.NewSource(0xf9a27))
	for _, iv := range []Interleave{RowBankRankChanCol, RowColBankRankChan} {
		for _, g := range roundtripGeometries() {
			m, err := NewMapper(g, iv)
			if err != nil {
				t.Fatalf("%v %+v: %v", iv, g, err)
			}
			mask := uint64(1)<<m.AddressBits() - 1
			lineMask := ^uint64(g.LineBytes - 1)
			for i := 0; i < trials; i++ {
				pa := rng.Uint64() & mask & lineMask
				loc := m.Decode(pa)
				if !m.Valid(loc) {
					t.Fatalf("%v: Decode(%#x) = %+v out of range", iv, pa, loc)
				}
				sag, cd := g.SAG(loc.Row), g.CD(loc.Col)
				if sag < 0 || sag >= g.SAGs || cd < 0 || cd >= g.CDs {
					t.Fatalf("%v: %#x → (sag=%d, cd=%d) outside %dx%d", iv, pa, sag, cd, g.SAGs, g.CDs)
				}
				// The (SAG, CD) projection splits row and column into
				// (tile, index within tile); both must reconstruct.
				if back := (loc.Row/g.SAGs)*g.SAGs + sag; back != loc.Row {
					t.Fatalf("%v: row %d ↛ sag split (got %d back)", iv, loc.Row, back)
				}
				if back := (loc.Col/g.CDs)*g.CDs + cd; back != loc.Col {
					t.Fatalf("%v: col %d ↛ cd split (got %d back)", iv, loc.Col, back)
				}
				if enc := m.Encode(loc); enc != pa {
					t.Fatalf("%v: Encode(Decode(%#x)) = %#x", iv, pa, enc)
				}
			}
		}
	}
}

// TestMapperRoundTripFromLocation fuzzes the opposite direction:
// random in-range Locations survive Encode → Decode for every
// interleave, so no two distinct locations can share an address.
func TestMapperRoundTripFromLocation(t *testing.T) {
	const trials = 20_000
	rng := rand.New(rand.NewSource(0x51ce9))
	for _, iv := range []Interleave{RowBankRankChanCol, RowColBankRankChan} {
		for _, g := range roundtripGeometries() {
			m := MustNewMapper(g, iv)
			for i := 0; i < trials; i++ {
				loc := Location{
					Channel: rng.Intn(g.Channels),
					Rank:    rng.Intn(g.Ranks),
					Bank:    rng.Intn(g.Banks),
					Row:     rng.Intn(g.Rows),
					Col:     rng.Intn(g.Cols),
				}
				if got := m.Decode(m.Encode(loc)); got != loc {
					t.Fatalf("%v: Decode(Encode(%+v)) = %+v", iv, loc, got)
				}
			}
		}
	}
}
