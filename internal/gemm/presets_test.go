package gemm

import (
	"testing"

	"repro/internal/addr"
)

func TestPresetsValidAndLowerable(t *testing.T) {
	g := testGeometry()
	for _, p := range Presets() {
		sp := p.WithDefaults()
		if err := sp.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		for _, tl := range Tilings() {
			sp := p
			sp.Tiling = tl
			s, err := NewStream(sp, g, addr.RowBankRankChanCol)
			if err != nil {
				t.Errorf("%s/%v: %v", p.Name, tl, err)
				continue
			}
			collect(t, s, 1000)
		}
	}
}

func TestPresetByName(t *testing.T) {
	for _, name := range PresetNames() {
		p, ok := PresetByName(name)
		if !ok {
			t.Fatalf("PresetByName(%q): not found", name)
		}
		if p.Name != name {
			t.Errorf("PresetByName(%q).Name = %q", name, p.Name)
		}
	}
	if _, ok := PresetByName("nope"); ok {
		t.Error("PresetByName(nope): want not found")
	}
}

// TestPresetTrafficShapes pins the intent of the preset set: the FFN
// down projection accumulates (RMW output), the up projection streams,
// and the decode preset is a GEMV.
func TestPresetTrafficShapes(t *testing.T) {
	down, _ := PresetByName("gpt2s-ffn-down")
	if !down.Accumulate {
		t.Error("gpt2s-ffn-down must accumulate")
	}
	up, _ := PresetByName("gpt2s-ffn-up")
	if up.Accumulate {
		t.Error("gpt2s-ffn-up must stream its output")
	}
	dec, _ := PresetByName("gpt2s-decode-qkv")
	if dec.M != 1 {
		t.Errorf("gpt2s-decode-qkv M = %d, want 1 (GEMV)", dec.M)
	}
}
