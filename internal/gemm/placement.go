// Tile placement: maps (matrix, block, line) coordinates onto physical
// addresses for each tiling strategy. All strategies address the same
// logical lines in the same order; only where those lines live in the
// (channel, rank, bank, row/SAG, col/CD) space differs.
package gemm

import (
	"fmt"

	"repro/internal/addr"
)

// placement is the per-spec address calculator shared by all the cores'
// streams of one Partition call (it is read-only after construction).
type placement struct {
	tiling Tiling
	g      addr.Geometry
	mp     *addr.Mapper

	// blockLines is the cache-line count of one A/B/C block.
	blockLines [3]int

	// Row-major: line-index bases of the three contiguous regions.
	base [3]uint64

	// SAG-aligned / output-stationary: the SAG indices owned by each
	// stream. CD-interleaved: the CD indices owned by each stream.
	sets [3][]int

	// bankSlots is Channels×Ranks×Banks — the bank-level rotation
	// period for the partitioned placements.
	bankSlots int
}

func newPlacement(spec Spec, g addr.Geometry, iv addr.Interleave) (*placement, error) {
	mp, err := addr.NewMapper(g, iv)
	if err != nil {
		return nil, fmt.Errorf("gemm: %w", err)
	}
	p := &placement{
		tiling:    spec.Tiling,
		g:         g,
		mp:        mp,
		bankSlots: g.Channels * g.Ranks * g.Banks,
	}
	lineBytes := g.LineBytes
	p.blockLines[matA] = blockLineCount(spec.TileM*spec.TileK, spec.WordBytes, lineBytes)
	p.blockLines[matB] = blockLineCount(spec.TileK*spec.TileN, spec.WordBytes, lineBytes)
	p.blockLines[matC] = blockLineCount(spec.TileM*spec.TileN, spec.WordBytes, lineBytes)

	switch spec.Tiling {
	case TilingRowMajor:
		// Contiguous regions, each base rounded up to a full SAG
		// rotation of the interleave (channels×ranks×banks×SAGs×Cols
		// lines) — the aliasing a power-of-two allocator produces.
		align := uint64(g.Channels) * uint64(g.Ranks) * uint64(g.Banks) *
			uint64(g.SAGs) * uint64(g.Cols)
		mB := ceilDiv(spec.M, spec.TileM)
		kB := ceilDiv(spec.K, spec.TileK)
		nB := ceilDiv(spec.N, spec.TileN)
		aLines := uint64(mB) * uint64(kB) * uint64(p.blockLines[matA])
		bLines := uint64(kB) * uint64(nB) * uint64(p.blockLines[matB])
		p.base[matA] = 0
		p.base[matB] = roundUp(aLines, align)
		p.base[matC] = roundUp(p.base[matB]+bLines, align)
	case TilingCDInterleaved:
		p.sets = partitionIndices(g.CDs)
	default: // TilingSAGAligned, TilingOutputStationary
		p.sets = partitionIndices(g.SAGs)
	}
	return p, nil
}

// blockLineCount returns the cache lines occupied by a block of elems
// words (at least one line; partial tiles are padded to full blocks).
func blockLineCount(elems, wordBytes, lineBytes int) int {
	n := ceilDiv(elems*wordBytes, lineBytes)
	if n < 1 {
		n = 1
	}
	return n
}

func roundUp(v, align uint64) uint64 {
	if align == 0 {
		return v
	}
	return (v + align - 1) / align * align
}

// partitionIndices splits [0, n) into the per-stream index sets. With
// n ≥ 3 each stream owns a disjoint contiguous slice (the weight
// stream B takes the remainder — it moves the most traffic). Smaller
// subdivision counts degrade gracefully: n = 2 isolates the two read
// streams and lets the output span both; n = 1 shares the single
// index, which collapses the strategy to bank-level rotation only.
func partitionIndices(n int) [3][]int {
	var out [3][]int
	idx := func(lo, hi int) []int {
		s := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			s = append(s, i)
		}
		return s
	}
	switch {
	case n >= 3:
		aN := n / 3
		cN := n / 3
		out[matA] = idx(0, aN)
		out[matB] = idx(aN, n-cN)
		out[matC] = idx(n-cN, n)
	case n == 2:
		out[matA] = idx(0, 1)
		out[matB] = idx(1, 2)
		out[matC] = idx(0, 2)
	default:
		all := idx(0, n)
		out[matA], out[matB], out[matC] = all, all, all
	}
	return out
}

// lineAddr returns the physical address of one line of one block of
// one matrix stream. block is the flattened block id (row-major over
// the matrix's block grid); line indexes within the block.
func (p *placement) lineAddr(mat, block, line int) uint64 {
	switch p.tiling {
	case TilingRowMajor:
		li := p.base[mat] + uint64(block)*uint64(p.blockLines[mat]) + uint64(line)
		return li * uint64(p.g.LineBytes)
	case TilingCDInterleaved:
		return p.cdAddr(mat, block, line)
	default: // TilingSAGAligned, TilingOutputStationary
		return p.sagAddr(mat, block, line)
	}
}

// sagAddr places block rows round-robin over the stream's owned SAGs,
// rotating banks underneath, with each stream confined to a disjoint
// third of every SAG's row space (so streams never share a row).
func (p *placement) sagAddr(mat, block, line int) uint64 {
	g := p.g
	set := p.sets[mat]
	rowsPerBlock := ceilDiv(p.blockLines[mat], g.Cols)
	u := block*rowsPerBlock + line/g.Cols
	col := line % g.Cols
	sag := set[u%len(set)]
	v := u / len(set)
	slot := v % p.bankSlots
	w := v / p.bankSlots
	span := g.RowsPerSAG() / 3
	if span == 0 {
		span = 1
	}
	rowInSAG := (mat*span + w%span) % g.RowsPerSAG()
	// SAG(row) = row % SAGs, so row = rowInSAG·SAGs + sag lands in sag.
	row := rowInSAG*g.SAGs + sag
	return p.mp.Encode(addr.Location{
		Channel: slot % g.Channels,
		Rank:    (slot / g.Channels) % g.Ranks,
		Bank:    slot / (g.Channels * g.Ranks),
		Row:     row,
		Col:     col,
	})
}

// cdAddr confines each stream's lines to its owned column divisions
// (CD(col) = col % CDs), walking banks round-robin; rows are placed
// naively in per-stream regions, so SAG behavior is uncontrolled.
func (p *placement) cdAddr(mat, block, line int) uint64 {
	g := p.g
	set := p.sets[mat]
	colsAvail := g.ColsPerCD() * len(set)
	rowsPerBlock := ceilDiv(p.blockLines[mat], colsAvail)
	u := block*rowsPerBlock + line/colsAvail
	t := line % colsAvail
	cd := set[t%len(set)]
	col := (t/len(set))*g.CDs + cd
	slot := u % p.bankSlots
	w := u / p.bankSlots
	span := g.Rows / 3
	if span == 0 {
		span = 1
	}
	row := (mat*span + w%span) % g.Rows
	return p.mp.Encode(addr.Location{
		Channel: slot % g.Channels,
		Rank:    (slot / g.Channels) % g.Ranks,
		Bank:    slot / (g.Channels * g.Ranks),
		Row:     row,
		Col:     col,
	})
}
