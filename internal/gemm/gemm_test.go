package gemm

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/trace"
)

func testGeometry() addr.Geometry {
	g := addr.PaperGeometry()
	g.SAGs, g.CDs = 8, 2
	return g
}

func collect(t *testing.T, s trace.Stream, n int) []trace.Access {
	t.Helper()
	out := make([]trace.Access, 0, n)
	for i := 0; i < n; i++ {
		a, ok := s.Next()
		if !ok {
			t.Fatalf("stream exhausted after %d accesses (GEMM streams must loop)", i)
		}
		out = append(out, a)
	}
	return out
}

func TestParseTilingRoundTrip(t *testing.T) {
	for _, tl := range Tilings() {
		got, err := ParseTiling(tl.String())
		if err != nil {
			t.Fatalf("ParseTiling(%q): %v", tl.String(), err)
		}
		if got != tl {
			t.Errorf("ParseTiling(%q) = %v, want %v", tl.String(), got, tl)
		}
	}
	if _, err := ParseTiling("nope"); err == nil {
		t.Error("ParseTiling(nope): want error")
	}
}

func TestSpecValidate(t *testing.T) {
	base := Spec{Shape: Shape{M: 8, K: 8, N: 8}}.WithDefaults()
	if err := base.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"zero M", func(s *Spec) { s.M = 0 }},
		{"negative K", func(s *Spec) { s.K = -1 }},
		{"bad word", func(s *Spec) { s.WordBytes = 3 }},
		{"zero tile", func(s *Spec) { s.TileM = 0 }},
		{"bad tiling", func(s *Spec) { s.Tiling = Tiling(99) }},
		{"negative gap", func(s *Spec) { s.Gap = -1 }},
	}
	for _, tc := range cases {
		s := base
		tc.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestWithDefaultsClampsTiles(t *testing.T) {
	s := Spec{Shape: Shape{M: 4, K: 16, N: 1}}.WithDefaults()
	if s.TileM != 4 || s.TileK != 16 || s.TileN != 1 {
		t.Errorf("tiles not clamped to shape: %dx%dx%d", s.TileM, s.TileK, s.TileN)
	}
	if s.WordBytes != 2 || s.Gap != 4 {
		t.Errorf("defaults not applied: word %d gap %d", s.WordBytes, s.Gap)
	}
}

func TestStreamDeterministic(t *testing.T) {
	spec := Spec{Shape: Shape{M: 64, K: 256, N: 128, Accumulate: true}, Tiling: TilingSAGAligned}
	g := testGeometry()
	s1, err := NewStream(spec, g, addr.RowBankRankChanCol)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewStream(spec, g, addr.RowBankRankChanCol)
	if err != nil {
		t.Fatal(err)
	}
	a1 := collect(t, s1, 20000)
	a2 := collect(t, s2, 20000)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("access %d diverges: %+v vs %+v", i, a1[i], a2[i])
		}
	}
}

// TestSAGPlacementTargetsOwnedSAGs decodes every emitted address and
// checks the central claim of the SAG-aligned lowering: each stream's
// lines land only in its owned subarray groups, and the three streams'
// SAG sets are disjoint.
func TestSAGPlacementTargetsOwnedSAGs(t *testing.T) {
	spec := Spec{Shape: Shape{M: 64, K: 256, N: 128, Accumulate: true}, Tiling: TilingSAGAligned}.WithDefaults()
	g := testGeometry()
	pl, err := newPlacement(spec, g, addr.RowBankRankChanCol)
	if err != nil {
		t.Fatal(err)
	}
	mp := addr.MustNewMapper(g, addr.RowBankRankChanCol)

	own := map[int]map[int]bool{}
	for mat := 0; mat < 3; mat++ {
		own[mat] = map[int]bool{}
		for _, s := range pl.sets[mat] {
			own[mat][s] = true
		}
	}
	// Disjointness across streams.
	for s := 0; s < g.SAGs; s++ {
		owners := 0
		for mat := 0; mat < 3; mat++ {
			if own[mat][s] {
				owners++
			}
		}
		if owners > 1 {
			t.Errorf("SAG %d owned by %d streams, want at most 1", s, owners)
		}
	}
	// Every address of the first 64 blocks targets an owned SAG.
	for mat := 0; mat < 3; mat++ {
		for block := 0; block < 64; block++ {
			for line := 0; line < pl.blockLines[mat]; line++ {
				pa := pl.lineAddr(mat, block, line)
				loc := mp.Decode(pa)
				if !mp.Valid(loc) {
					t.Fatalf("mat %d block %d line %d: invalid location %+v", mat, block, line, loc)
				}
				if sag := g.SAG(loc.Row); !own[mat][sag] {
					t.Fatalf("mat %d block %d line %d: SAG %d not owned (own %v)",
						mat, block, line, sag, pl.sets[mat])
				}
			}
		}
	}
}

// TestCDPlacementTargetsOwnedCDs is the CD-interleaved counterpart.
func TestCDPlacementTargetsOwnedCDs(t *testing.T) {
	spec := Spec{Shape: Shape{M: 64, K: 256, N: 128}, Tiling: TilingCDInterleaved}.WithDefaults()
	g := addr.PaperGeometry() // 4×4: enough CDs for disjoint sets
	pl, err := newPlacement(spec, g, addr.RowBankRankChanCol)
	if err != nil {
		t.Fatal(err)
	}
	mp := addr.MustNewMapper(g, addr.RowBankRankChanCol)
	for mat := 0; mat < 3; mat++ {
		own := map[int]bool{}
		for _, c := range pl.sets[mat] {
			own[c] = true
		}
		for block := 0; block < 64; block++ {
			for line := 0; line < pl.blockLines[mat]; line++ {
				loc := mp.Decode(pl.lineAddr(mat, block, line))
				if !mp.Valid(loc) {
					t.Fatalf("mat %d: invalid location %+v", mat, loc)
				}
				if cd := g.CD(loc.Col); !own[cd] {
					t.Fatalf("mat %d block %d line %d: CD %d not owned (own %v)",
						mat, block, line, cd, pl.sets[mat])
				}
			}
		}
	}
}

// TestRowMajorRegionsDisjoint checks the naive layout's A/B/C regions
// do not overlap and start SAG-rotation aligned.
func TestRowMajorRegionsDisjoint(t *testing.T) {
	spec := Spec{Shape: Shape{M: 64, K: 256, N: 128}, Tiling: TilingRowMajor}.WithDefaults()
	g := testGeometry()
	pl, err := newPlacement(spec, g, addr.RowBankRankChanCol)
	if err != nil {
		t.Fatal(err)
	}
	mB, kB, nB := 2, 4, 2
	sizes := [3]uint64{
		uint64(mB * kB * pl.blockLines[matA]),
		uint64(kB * nB * pl.blockLines[matB]),
		uint64(mB * nB * pl.blockLines[matC]),
	}
	align := uint64(g.Channels * g.Ranks * g.Banks * g.SAGs * g.Cols)
	for mat := 0; mat < 3; mat++ {
		if pl.base[mat]%align != 0 {
			t.Errorf("mat %d base %d not aligned to %d lines", mat, pl.base[mat], align)
		}
	}
	if pl.base[matA]+sizes[matA] > pl.base[matB] {
		t.Errorf("A [%d,+%d) overlaps B base %d", pl.base[matA], sizes[matA], pl.base[matB])
	}
	if pl.base[matB]+sizes[matB] > pl.base[matC] {
		t.Errorf("B [%d,+%d) overlaps C base %d", pl.base[matB], sizes[matB], pl.base[matC])
	}
}

// TestScheduleInterleaves checks one k-step's slot order contains the
// exact per-stream counts, proportionally interleaved (no stream is
// finished before the schedule's final decile).
func TestScheduleInterleaves(t *testing.T) {
	counts := [3]int{64, 128, 64}
	sched := buildSchedule(counts)
	if len(sched) != 256 {
		t.Fatalf("schedule length %d, want 256", len(sched))
	}
	var got [3]int
	last := [3]int{-1, -1, -1}
	for i, x := range sched {
		got[x]++
		last[x] = i
	}
	if got != counts {
		t.Fatalf("slot counts %v, want %v", got, counts)
	}
	for x, l := range last {
		if l < len(sched)*9/10 {
			t.Errorf("stream %d finished at slot %d of %d: not interleaved", x, l, len(sched))
		}
	}
}

func TestPartitionCoversAllTiles(t *testing.T) {
	spec := Spec{Shape: Shape{M: 96, K: 128, N: 64}}
	g := testGeometry()
	ss, err := Partition(spec, g, addr.RowBankRankChanCol, 3)
	if err != nil {
		t.Fatal(err)
	}
	// M = 96, TileM = 32 → 3 row tiles, one per core, disjoint.
	seen := map[int]int{}
	for c, s := range ss {
		st := s.(*stream)
		if st.jbLo != 0 || st.jbHi != st.nB {
			t.Errorf("core %d: M-split stream must own all column tiles, got [%d,%d)", c, st.jbLo, st.jbHi)
		}
		for ib := st.ibLo; ib < st.ibHi; ib++ {
			if prev, dup := seen[ib]; dup {
				t.Errorf("row tile %d owned by cores %d and %d", ib, prev, c)
			}
			seen[ib] = c
		}
	}
	if len(seen) != 3 {
		t.Errorf("row tiles covered %d, want 3", len(seen))
	}
}

func TestPartitionGEMVSplitsColumns(t *testing.T) {
	spec := Spec{Shape: Shape{M: 1, K: 768, N: 2304}}
	g := testGeometry()
	ss, err := Partition(spec, g, addr.RowBankRankChanCol, 2)
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for c, s := range ss {
		st := s.(*stream)
		if st.ibLo != 0 || st.ibHi != st.mB {
			t.Errorf("core %d: N-split stream must own all row tiles", c)
		}
		covered += st.jbHi - st.jbLo
	}
	if want := ceilDiv(2304, 64); covered != want {
		t.Errorf("column tiles covered %d, want %d", covered, want)
	}
}

func TestPartitionErrors(t *testing.T) {
	g := testGeometry()
	if _, err := Partition(Spec{Shape: Shape{M: 8, K: 8, N: 8}}, g, addr.RowBankRankChanCol, 0); err == nil {
		t.Error("0 cores: want error")
	}
	// 1×1 shape: one tile in each dimension, cannot feed 2 cores.
	if _, err := Partition(Spec{Shape: Shape{M: 1, K: 8, N: 1}}, g, addr.RowBankRankChanCol, 2); err == nil {
		t.Error("more cores than tiles: want error")
	}
	if _, err := Partition(Spec{Shape: Shape{M: 0, K: 8, N: 8}}, g, addr.RowBankRankChanCol, 1); err == nil {
		t.Error("invalid shape: want error")
	}
	bad := g
	bad.Rows = 1000 // not a power of two
	if _, err := Partition(Spec{Shape: Shape{M: 8, K: 8, N: 8}}, bad, addr.RowBankRankChanCol, 1); err == nil {
		t.Error("invalid geometry: want error")
	}
}

// TestStreamTraffic checks the per-k-step access mix: accumulation
// read-modify-writes the output every step, streaming writes it once.
func TestStreamTraffic(t *testing.T) {
	g := testGeometry()
	for _, tc := range []struct {
		name       string
		accumulate bool
		tiling     Tiling
		wantWrites bool
	}{
		{"streaming", false, TilingSAGAligned, true},
		{"accumulate", true, TilingSAGAligned, true},
		{"outstat", true, TilingOutputStationary, true},
	} {
		spec := Spec{Shape: Shape{M: 32, K: 128, N: 64, Accumulate: tc.accumulate}, Tiling: tc.tiling}
		s, err := NewStream(spec, g, addr.RowBankRankChanCol)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		reads, writes := 0, 0
		for _, a := range collect(t, s, 30000) {
			if a.Write {
				writes++
			} else {
				reads++
			}
		}
		if writes == 0 {
			t.Errorf("%s: no writes in 30000 accesses", tc.name)
		}
		if reads == 0 {
			t.Errorf("%s: no reads", tc.name)
		}
		if tc.accumulate && tc.tiling != TilingOutputStationary {
			// RMW traffic: writes every k-step, so a solid fraction.
			if frac := float64(writes) / 30000; frac < 0.1 {
				t.Errorf("%s: write fraction %.3f, want >= 0.1 under RMW", tc.name, frac)
			}
		}
	}
}

// TestStreamAddressesWithinCapacity: partitioned placements must encode
// valid in-range locations; the naive layout's small shapes too.
func TestStreamAddressesWithinCapacity(t *testing.T) {
	g := testGeometry()
	for _, tl := range Tilings() {
		spec := Spec{Shape: Shape{M: 128, K: 3072, N: 768, Accumulate: true}, Tiling: tl}
		s, err := NewStream(spec, g, addr.RowBankRankChanCol)
		if err != nil {
			t.Fatalf("%v: %v", tl, err)
		}
		total := g.TotalBytes()
		for i, a := range collect(t, s, 20000) {
			if a.Addr >= total {
				t.Fatalf("%v: access %d address %#x beyond capacity %#x", tl, i, a.Addr, total)
			}
			if a.Addr%uint64(g.LineBytes) != 0 {
				t.Fatalf("%v: access %d address %#x not line aligned", tl, i, a.Addr)
			}
		}
	}
}

func TestSpecString(t *testing.T) {
	s := Spec{Shape: Shape{M: 128, K: 768, N: 768}, Tiling: TilingSAGAligned}
	if got, want := s.String(), "gemm-128x768x768w2/sag"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	s.Name = "gpt2s-attn-out"
	if got, want := s.String(), "gpt2s-attn-out/sag"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// BenchmarkLowering is the bench-smoke hook: the cost of generating the
// stream itself (placement arithmetic, no simulation).
func BenchmarkLowering(b *testing.B) {
	spec := Spec{Shape: Shape{M: 128, K: 3072, N: 768, Accumulate: true}, Tiling: TilingSAGAligned}
	s, err := NewStream(spec, testGeometry(), addr.RowBankRankChanCol)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		a, _ := s.Next()
		sink += a.Addr
	}
	_ = sink
}
