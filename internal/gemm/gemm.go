// Package gemm lowers GEMM/GEMV workload shapes into deterministic,
// tile-aware memory access streams — the "bring your workload shape"
// counterpart to the SPEC-like profiles in internal/trace.
//
// A tiled matmul C[M,N] (+)= A[M,K] × B[K,N] is exactly the access
// structure the FgNVM bank subdivision is built for: blocked loops
// stream weight tiles while read-modify-writing an output tile, so the
// mapping of tiles onto (SAG, CD) decides whether concurrent streams
// collide on one subdivision or overlap across several. The lowering
// here makes that mapping explicit. Every strategy enumerates the same
// logical blocked loop nest (identical block order, line counts, and
// instruction gaps); only the physical placement of matrix blocks —
// computed through internal/addr's phys⇄(SAG, CD) mapping — differs:
//
//   - TilingRowMajor: the naive layout. Matrices occupy contiguous,
//     power-of-two-aligned byte regions, the way a simple allocator
//     would place them. Under the row:bank:...:col interleave each
//     32 KB span of a region sits in one SAG across the banks, and the
//     aligned region bases phase-align the A/B/C streams, so an output
//     tile being written shares its SAG with incoming weight reads —
//     the aliasing pathology SALP/PALP-style placement exists to fix.
//   - TilingSAGAligned: each stream (A, B, C) owns a disjoint slice of
//     the SAG space, and consecutive blocks of one stream rotate
//     through that slice. Output writes can never block weight reads
//     on a row latch (Backgrounded Writes gets disjoint SAGs to hide
//     writes in), and back-to-back block reads land in distinct SAGs
//     (Multi-Activation can overlap their senses).
//   - TilingCDInterleaved: each stream owns a slice of the CD space;
//     block lines cycle through the owned column divisions. Writes
//     occupy only their own CDs' sense paths (Partial-Activation
//     senses one segment), but rows are placed naively, so SAG-level
//     collisions remain — the contrast case that shifts stalls between
//     the sag and cd buckets.
//   - TilingOutputStationary: SAG-aligned placement, but the output
//     tile is held on-chip across the whole K loop and written once at
//     the end — the read-modify-write traffic of accumulation
//     disappears, isolating how much of a strategy's win comes from
//     write pressure.
//
// Streams loop forever (an inference server runs layer after layer),
// are pure integer state machines (no RNG), and are byte-deterministic
// for a fixed Spec and geometry. Partition splits one GEMM across
// cores — by M-row tiles, or by N-column tiles for GEMV-shaped work —
// with the weight matrix B genuinely shared between the cores' streams.
package gemm

import (
	"fmt"
	"strings"

	"repro/internal/addr"
	"repro/internal/trace"
)

// Tiling selects the lowering strategy: how matrix blocks are placed
// onto the memory system's (bank, SAG, CD) structure.
type Tiling int

const (
	// TilingRowMajor is the naive contiguous layout (see package doc).
	TilingRowMajor Tiling = iota
	// TilingSAGAligned partitions the SAG space among the A/B/C streams.
	TilingSAGAligned
	// TilingCDInterleaved partitions the CD space among the streams.
	TilingCDInterleaved
	// TilingOutputStationary is SAG-aligned placement with the output
	// tile kept on-chip across the K loop (single write per tile).
	TilingOutputStationary
)

var tilingNames = [...]string{"rowmajor", "sag", "cd", "outstat"}

func (t Tiling) String() string {
	if t >= 0 && int(t) < len(tilingNames) {
		return tilingNames[t]
	}
	return fmt.Sprintf("Tiling(%d)", int(t))
}

// ParseTiling maps a name (as printed by String) back to a Tiling.
func ParseTiling(name string) (Tiling, error) {
	for i, n := range tilingNames {
		if n == name {
			return Tiling(i), nil
		}
	}
	return 0, fmt.Errorf("gemm: unknown tiling %q (want one of %s)",
		name, strings.Join(tilingNames[:], ", "))
}

// Tilings returns all strategies in a stable order.
func Tilings() []Tiling {
	return []Tiling{TilingRowMajor, TilingSAGAligned, TilingCDInterleaved, TilingOutputStationary}
}

// Shape is the logical GEMM problem: C[M,N] (+)= A[M,K] × B[K,N].
// N = 1 degenerates to GEMV.
type Shape struct {
	M, K, N int
	// WordBytes is the element size (default 2 — fp16).
	WordBytes int
	// Accumulate selects read-modify-write output traffic: each K-step
	// reads and rewrites the output block in place (a residual add or
	// split-K accumulation). False streams the output: one write pass
	// when the K loop completes.
	Accumulate bool
}

// Spec is one lowerable workload: a shape plus the tiling strategy and
// the block/intensity knobs. Zero knobs take the documented defaults.
type Spec struct {
	Shape
	Tiling Tiling

	// TileM×TileK blocks of A, TileK×TileN blocks of B and TileM×TileN
	// blocks of C form the blocked loop nest. Defaults 32×64×64
	// (an fp16 A block is then exactly one 4 KB memory row). Blocks
	// are clamped to the shape; partial edge tiles are padded to full
	// tiles, so the lowering is uniform.
	TileM, TileK, TileN int

	// Gap is the number of non-memory instructions between consecutive
	// accesses (constant — the lowering is RNG-free). Default 4.
	Gap int

	// Name labels the spec (set for presets); String falls back to the
	// shape when empty.
	Name string
}

const (
	defaultWordBytes = 2
	defaultTileM     = 32
	defaultTileK     = 64
	defaultTileN     = 64
	defaultGap       = 4
	maxGap           = 1 << 20
)

// WithDefaults returns the spec with zero knobs replaced by their
// defaults and tiles clamped to the shape — the canonical form used
// for cache keys and labels.
func (s Spec) WithDefaults() Spec {
	if s.WordBytes == 0 {
		s.WordBytes = defaultWordBytes
	}
	if s.TileM == 0 {
		s.TileM = defaultTileM
	}
	if s.TileK == 0 {
		s.TileK = defaultTileK
	}
	if s.TileN == 0 {
		s.TileN = defaultTileN
	}
	if s.Gap == 0 {
		s.Gap = defaultGap
	}
	if s.M > 0 && s.TileM > s.M {
		s.TileM = s.M
	}
	if s.K > 0 && s.TileK > s.K {
		s.TileK = s.K
	}
	if s.N > 0 && s.TileN > s.N {
		s.TileN = s.N
	}
	return s
}

// Validate checks a spec (after WithDefaults).
func (s Spec) Validate() error {
	if s.M < 1 || s.K < 1 || s.N < 1 {
		return fmt.Errorf("gemm: shape %dx%dx%d: M, K, N must be positive", s.M, s.K, s.N)
	}
	switch s.WordBytes {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("gemm: word size %d bytes (want 1, 2, 4 or 8)", s.WordBytes)
	}
	if s.TileM < 1 || s.TileK < 1 || s.TileN < 1 {
		return fmt.Errorf("gemm: tile %dx%dx%d: tile dimensions must be positive", s.TileM, s.TileK, s.TileN)
	}
	if s.Tiling < 0 || int(s.Tiling) >= len(tilingNames) {
		return fmt.Errorf("gemm: unknown tiling %d", int(s.Tiling))
	}
	if s.Gap < 0 || s.Gap > maxGap {
		return fmt.Errorf("gemm: gap %d out of range [0, %d]", s.Gap, maxGap)
	}
	return nil
}

// ShapeName is the tiling-independent label: the preset name, or
// "gemm-MxKxNwW" for explicit shapes.
func (s Spec) ShapeName() string {
	if s.Name != "" {
		return s.Name
	}
	w := s.WordBytes
	if w == 0 {
		w = defaultWordBytes
	}
	return fmt.Sprintf("gemm-%dx%dx%dw%d", s.M, s.K, s.N, w)
}

// String labels the spec including its tiling, e.g.
// "gpt2s-ffn-down/sag" or "gemm-128x768x768w2/rowmajor".
func (s Spec) String() string { return s.ShapeName() + "/" + s.Tiling.String() }

// The three access streams of a GEMM, in placement order.
const (
	matA = 0
	matB = 1
	matC = 2
)

// NewStream lowers spec for a single core. The geometry and interleave
// must match the simulated memory system so SAG/CD-targeted placement
// lands where it claims to.
func NewStream(spec Spec, g addr.Geometry, iv addr.Interleave) (trace.Stream, error) {
	ss, err := Partition(spec, g, iv, 1)
	if err != nil {
		return nil, err
	}
	return ss[0], nil
}

// Partition lowers spec into per-core streams: the M-row tiles are
// split contiguously across the cores (or, when M has fewer tiles than
// cores — the GEMV case — the N-column tiles are split instead). The
// weight matrix B is shared: every core reads the same B addresses,
// while A and C tiles are core-disjoint by construction.
func Partition(spec Spec, g addr.Geometry, iv addr.Interleave, cores int) ([]trace.Stream, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if cores < 1 {
		return nil, fmt.Errorf("gemm: %d cores, must be positive", cores)
	}
	if spec.WordBytes > g.LineBytes {
		return nil, fmt.Errorf("gemm: word size %d exceeds line size %d", spec.WordBytes, g.LineBytes)
	}
	pl, err := newPlacement(spec, g, iv)
	if err != nil {
		return nil, err
	}
	mB := ceilDiv(spec.M, spec.TileM)
	kB := ceilDiv(spec.K, spec.TileK)
	nB := ceilDiv(spec.N, spec.TileN)
	splitM := mB >= cores
	if !splitM && nB < cores {
		return nil, fmt.Errorf("gemm: %d cores exceed both the %d row tiles and %d column tiles of %dx%dx%d",
			cores, mB, nB, spec.M, spec.K, spec.N)
	}
	// A GEMM engine double-buffers: the A, B and (when touched) C tile
	// streams of one k-step are fetched concurrently, not one after the
	// other. The lowering interleaves them proportionally, so several
	// rows are in flight at once — the access-level parallelism the
	// subdivisions are there to serve. schedC covers k-steps that touch
	// the output; sched covers the read-only middle of a streaming
	// K loop.
	schedC := buildSchedule([3]int{pl.blockLines[matA], pl.blockLines[matB], pl.blockLines[matC]})
	sched := buildSchedule([3]int{pl.blockLines[matA], pl.blockLines[matB], 0})
	out := make([]trace.Stream, cores)
	for c := 0; c < cores; c++ {
		st := &stream{
			sp: spec, pl: pl,
			mB: mB, kB: kB, nB: nB,
			ibHi: mB, jbHi: nB,
			rmw:    spec.Accumulate && spec.Tiling != TilingOutputStationary,
			sched:  sched,
			schedC: schedC,
		}
		if splitM {
			st.ibLo, st.ibHi = c*mB/cores, (c+1)*mB/cores
		} else {
			st.jbLo, st.jbHi = c*nB/cores, (c+1)*nB/cores
		}
		st.ib, st.jb = st.ibLo, st.jbLo
		out[c] = st
	}
	return out, nil
}

// buildSchedule produces the deterministic proportional interleave of
// one k-step's line slots: a weighted round-robin (largest-deficit
// first, ties broken A before B before C) over the per-stream counts.
func buildSchedule(counts [3]int) []uint8 {
	total := counts[0] + counts[1] + counts[2]
	sched := make([]uint8, 0, total)
	var emitted [3]int
	for len(sched) < total {
		best := -1
		bestVal := 0
		for x := 0; x < 3; x++ {
			if emitted[x] >= counts[x] {
				continue
			}
			// Deficit of stream x if it does NOT emit now, scaled by
			// total to stay in integers.
			v := counts[x]*(len(sched)+1) - emitted[x]*total
			if best == -1 || v > bestVal {
				best, bestVal = x, v
			}
		}
		sched = append(sched, uint8(best))
		emitted[best]++
	}
	return sched
}

// stream walks the blocked loop nest (ib, jb, kb) forever. Within each
// k-step it follows the precomputed interleave schedule, emitting lines
// of the A, B and C blocks concurrently; the C block is read+written
// per line under accumulation, or written once on the final K step
// otherwise.
type stream struct {
	sp Spec
	pl *placement

	mB, kB, nB int // block counts over M, K, N
	ibLo, ibHi int // this core's M-tile range
	jbLo, jbHi int // this core's N-tile range

	rmw    bool    // C is read-modify-written on every K step
	sched  []uint8 // k-step slot order without C traffic
	schedC []uint8 // k-step slot order including C traffic

	// Cursor.
	ib, jb, kb int
	pos        int    // index into the current schedule
	line       [3]int // per-stream line cursor within the k-step
	cWrite     bool   // RMW: the write half of the current C line is pending
}

// curSched selects the slot order of the current k-step: output traffic
// happens every step under accumulation, else only on the last K step.
func (s *stream) curSched() []uint8 {
	if s.rmw || s.kb == s.kB-1 {
		return s.schedC
	}
	return s.sched
}

// Next implements trace.Stream. GEMM streams never exhaust.
func (s *stream) Next() (trace.Access, bool) {
	sched := s.curSched()
	a := trace.Access{Gap: uint32(s.sp.Gap)}
	switch sched[s.pos] {
	case matA:
		a.Addr = s.pl.lineAddr(matA, s.ib*s.kB+s.kb, s.line[matA])
		s.line[matA]++
		s.pos++
	case matB:
		a.Addr = s.pl.lineAddr(matB, s.kb*s.nB+s.jb, s.line[matB])
		s.line[matB]++
		s.pos++
	default: // matC
		a.Addr = s.pl.lineAddr(matC, s.ib*s.nB+s.jb, s.line[matC])
		if s.rmw && !s.cWrite {
			s.cWrite = true // read half; the write half comes next
		} else {
			a.Write = true
			s.cWrite = false
			s.line[matC]++
			s.pos++
		}
	}
	if s.pos == len(sched) {
		s.advance()
	}
	return a, true
}

// advance steps the loop nest to the next (ib, jb, kb) tile, wrapping
// to this core's first tile when the GEMM completes (streams loop).
func (s *stream) advance() {
	s.pos = 0
	s.line = [3]int{}
	s.kb++
	if s.kb < s.kB {
		return
	}
	s.kb = 0
	s.jb++
	if s.jb < s.jbHi {
		return
	}
	s.jb = s.jbLo
	s.ib++
	if s.ib < s.ibHi {
		return
	}
	s.ib = s.ibLo
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
