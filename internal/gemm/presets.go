// LLM-inference layer presets: the named GEMM shapes of a GPT-2-small
// transformer block (d_model 768, 12 heads × d_head 64, d_ff 3072,
// fp16 weights/activations) at prefill sequence length 128, plus one
// single-token decode GEMV. These are the canonical "attention QKV /
// score / output, FFN up / down" shapes the tiling case study runs.
package gemm

const (
	presetSeq   = 128  // prefill sequence length
	presetD     = 768  // d_model
	presetDHead = 64   // per-head dimension
	presetDFF   = 3072 // FFN inner dimension
	presetWord  = 2    // fp16
)

// Presets returns the named LLM layer shapes in a stable order. The
// returned specs carry no tiling choice (TilingRowMajor zero value);
// callers pick the strategy.
func Presets() []Spec {
	return []Spec{
		// Fused QKV projection: X[seq,d] × W_qkv[d,3d].
		{Name: "gpt2s-attn-qkv", Shape: Shape{M: presetSeq, K: presetD, N: 3 * presetD, WordBytes: presetWord}},
		// One head's attention scores: Q[seq,d_head] × K^T[d_head,seq].
		{Name: "gpt2s-attn-score", Shape: Shape{M: presetSeq, K: presetDHead, N: presetSeq, WordBytes: presetWord}},
		// Attention output projection, accumulated onto the residual.
		{Name: "gpt2s-attn-out", Shape: Shape{M: presetSeq, K: presetD, N: presetD, WordBytes: presetWord, Accumulate: true}},
		// FFN up projection: X[seq,d] × W_up[d,d_ff].
		{Name: "gpt2s-ffn-up", Shape: Shape{M: presetSeq, K: presetD, N: presetDFF, WordBytes: presetWord}},
		// FFN down projection, accumulated onto the residual.
		{Name: "gpt2s-ffn-down", Shape: Shape{M: presetSeq, K: presetDFF, N: presetD, WordBytes: presetWord, Accumulate: true}},
		// Single-token decode QKV: a GEMV (M = 1).
		{Name: "gpt2s-decode-qkv", Shape: Shape{M: 1, K: presetD, N: 3 * presetD, WordBytes: presetWord}},
	}
}

// PresetByName looks a preset up by its Name.
func PresetByName(name string) (Spec, bool) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, true
		}
	}
	return Spec{}, false
}

// PresetNames returns the preset names in presentation order.
func PresetNames() []string {
	ps := Presets()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}
