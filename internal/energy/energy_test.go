package energy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestDefaults(t *testing.T) {
	m := New(Config{RowBufferBits: 8192, Banks: 8})
	m.Sense(8192)
	if got := m.ReadPJ(); got != 16384 {
		t.Errorf("ReadPJ = %v, want 16384 (8192 bits x 2 pJ)", got)
	}
	m.Write(512)
	if got := m.WritePJ(); got != 8192 {
		t.Errorf("WritePJ = %v, want 8192 (512 bits x 16 pJ)", got)
	}
	if m.Senses() != 1 || m.Writes() != 1 {
		t.Errorf("op counts = %d/%d, want 1/1", m.Senses(), m.Writes())
	}
	if m.BitsSensed() != 8192 || m.BitsWritten() != 512 {
		t.Errorf("bit counts = %d/%d", m.BitsSensed(), m.BitsWritten())
	}
	if m.TotalPJ() != m.ReadPJ()+m.WritePJ()+m.BackgroundPJ() {
		t.Error("TotalPJ inconsistent")
	}
}

func TestPartialActivationSavesEnergy(t *testing.T) {
	// Section 6: baseline senses 1 KB; 8x2 senses 512 B; 8x8 128 B; 8x32 32 B.
	base := New(Config{})
	base.Sense(8192) // 1 KB
	cfg82 := New(Config{})
	cfg82.Sense(4096) // 512 B
	cfg88 := New(Config{})
	cfg88.Sense(1024) // 128 B
	cfg832 := New(Config{})
	cfg832.Sense(256) // 32 B
	if cfg82.ReadPJ() != base.ReadPJ()/2 {
		t.Error("8x2 sensing should halve read energy")
	}
	if cfg88.ReadPJ() != base.ReadPJ()/8 {
		t.Error("8x8 sensing should be 1/8 read energy")
	}
	if cfg832.ReadPJ() != base.ReadPJ()/32 {
		t.Error("8x32 sensing should be 1/32 read energy")
	}
}

func TestBackgroundAccumulation(t *testing.T) {
	m := New(Config{RowBufferBits: 1000, Banks: 2, BackgroundWindow: 10})
	m.AdvanceBackground(10)
	// 0.08 pJ/bit x 1000 bits x 2 banks x (10/10 windows) = 160 pJ.
	if got := m.BackgroundPJ(); math.Abs(got-160) > 1e-9 {
		t.Errorf("BackgroundPJ = %v, want 160", got)
	}
	// Idempotent for the same tick; monotone after.
	m.AdvanceBackground(10)
	if got := m.BackgroundPJ(); math.Abs(got-160) > 1e-9 {
		t.Errorf("BackgroundPJ after repeat = %v, want 160", got)
	}
	m.AdvanceBackground(5) // going backwards is ignored
	if got := m.BackgroundPJ(); math.Abs(got-160) > 1e-9 {
		t.Errorf("BackgroundPJ after backwards = %v, want 160", got)
	}
	m.AdvanceBackground(20)
	if got := m.BackgroundPJ(); math.Abs(got-320) > 1e-9 {
		t.Errorf("BackgroundPJ = %v, want 320", got)
	}
}

func TestCustomPerBitCosts(t *testing.T) {
	m := New(Config{ReadPJPerBit: 1, WritePJPerBit: 2, BackgroundPJPerBit: 0.5,
		BackgroundWindow: 1, RowBufferBits: 4, Banks: 1})
	m.Sense(10)
	m.Write(10)
	m.AdvanceBackground(1)
	if m.ReadPJ() != 10 || m.WritePJ() != 20 {
		t.Errorf("custom costs: read=%v write=%v", m.ReadPJ(), m.WritePJ())
	}
	if m.BackgroundPJ() != 2 {
		t.Errorf("custom bg: %v, want 2", m.BackgroundPJ())
	}
}

// Property: energy totals are nonnegative and monotone under any
// operation sequence, and split accounting sums to the total.
func TestEnergyMonotoneProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		m := New(Config{RowBufferBits: 128, Banks: 4})
		prev := 0.0
		tick := uint64(0)
		for _, op := range ops {
			switch op % 3 {
			case 0:
				m.Sense(int(op % 512))
			case 1:
				m.Write(int(op % 512))
			case 2:
				tick += uint64(op % 100)
				m.AdvanceBackground(sim.Tick(tick))
			}
			tot := m.TotalPJ()
			if tot < prev-1e-9 {
				return false
			}
			prev = tot
		}
		return math.Abs(m.TotalPJ()-(m.ReadPJ()+m.WritePJ()+m.BackgroundPJ())) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
