// Package energy implements the memory energy model of the FgNVM paper
// (Section 6, "Energy Improvement"):
//
//   - a read senses bits at 2 pJ/bit — the number of bits sensed per
//     activation depends on the architecture: a baseline activation
//     senses the full row buffer, a Partial-Activation senses only one
//     CD-wide segment;
//   - a write programs bits at 16 pJ/bit — always 64 bits in parallel
//     per write-driver group, independent of the FgNVM dimensions;
//   - background power averages 0.08 pJ per row-buffer bit per
//     BackgroundWindow cycles (the paper gives the per-bit constant;
//     the window is our calibration of its time base, see EXPERIMENTS.md).
//
// All energies are accounted in picojoules.
package energy

import "repro/internal/sim"

// Default per-bit energies from the paper.
const (
	ReadPJPerBit       = 2.0
	WritePJPerBit      = 16.0
	BackgroundPJPerBit = 0.08
)

// DefaultBackgroundWindow is the number of controller cycles over which
// one unit of background energy (0.08 pJ × row-buffer bits) is charged.
// 40 cycles at 400 MHz = 100 ns, calibrated so that background energy is
// a few percent of baseline dynamic energy on memory-intensive phases,
// matching the gap between the paper's measured savings and the ideal
// halving per CD doubling (Section 6).
const DefaultBackgroundWindow = 40

// Model accumulates energy for one simulated memory system.
//
// A Model can hand out per-channel children via Shard: each child
// accumulates its own dynamic counters (reads, writes, bits), and the
// parent's getters fold the children back in by integer addition. The
// split exists for the parallel engine — banks of different channels
// charge their own shard with no coordination — and is exact because
// every accumulator is an integer event count (commutative,
// association-free); picojoule conversion happens only at read time.
// Background energy stays on the parent: it is advanced engine-side.
type Model struct {
	readPJPerBit  float64
	writePJPerBit float64
	bgPJPerBit    float64
	bgWindow      sim.Tick
	rowBufferBits float64 // bits kept powered per bank (row buffer + periphery)
	banks         float64

	reads      uint64
	writes     uint64
	bitsSensed uint64
	bitsWrit   uint64

	// Background energy is tracked as an integer tick count and
	// converted to picojoules only when read. Accumulating in float
	// per call would make the total depend on the call pattern
	// (N one-cycle advances sum differently from one N-cycle advance
	// in floating point), which would break the bit-exactness the
	// fast-forwarded simulation loop is held to.
	bgTicks uint64
	lastBG  sim.Tick // background accounted up to this tick

	shards []*Model // per-channel children handed out by Shard
}

// Config parameterizes a Model.
type Config struct {
	ReadPJPerBit       float64  // default ReadPJPerBit
	WritePJPerBit      float64  // default WritePJPerBit
	BackgroundPJPerBit float64  // default BackgroundPJPerBit
	BackgroundWindow   sim.Tick // default DefaultBackgroundWindow
	RowBufferBits      int      // bits in one bank's (full) row buffer
	Banks              int      // banks contributing background power
}

// New builds a Model, applying defaults for zero-valued fields.
func New(c Config) *Model {
	if c.ReadPJPerBit == 0 {
		c.ReadPJPerBit = ReadPJPerBit
	}
	if c.WritePJPerBit == 0 {
		c.WritePJPerBit = WritePJPerBit
	}
	if c.BackgroundPJPerBit == 0 {
		c.BackgroundPJPerBit = BackgroundPJPerBit
	}
	if c.BackgroundWindow == 0 {
		c.BackgroundWindow = DefaultBackgroundWindow
	}
	return &Model{
		readPJPerBit:  c.ReadPJPerBit,
		writePJPerBit: c.WritePJPerBit,
		bgPJPerBit:    c.BackgroundPJPerBit,
		bgWindow:      c.BackgroundWindow,
		rowBufferBits: float64(c.RowBufferBits),
		banks:         float64(c.Banks),
	}
}

// Shard returns a new per-channel child accumulator. Banks owned by one
// channel shard charge Sense/Write against their own child, so the
// parallel engine never has two goroutines touching one counter; the
// parent's getters sum the children back in. Children must be created
// before simulation starts (engine-side), and never advance background
// energy — that stays on the parent.
func (m *Model) Shard() *Model {
	s := &Model{
		readPJPerBit:  m.readPJPerBit,
		writePJPerBit: m.writePJPerBit,
		bgPJPerBit:    m.bgPJPerBit,
		bgWindow:      m.bgWindow,
		rowBufferBits: m.rowBufferBits,
		banks:         m.banks,
	}
	m.shards = append(m.shards, s)
	return s
}

// Sense charges the cost of sensing bits during an activation (full or
// partial). bits is the number of cells read by the sense amplifiers.
//
// Like every accumulator in the model, the charge is tracked as an
// exact integer bit count and converted to picojoules only when read:
// the model is shared by every bank in the system, so the accumulation
// must be commutative and association-free for results to stay
// bit-identical regardless of which channel's bank charges first (the
// per-channel sharding invariant; float += ordering would break it for
// non-dyadic per-bit rates).
func (m *Model) Sense(bits int) {
	m.reads++
	m.bitsSensed += uint64(bits)
}

// Write charges the cost of programming bits.
func (m *Model) Write(bits int) {
	m.writes++
	m.bitsWrit += uint64(bits)
}

// AdvanceBackground charges background energy up to time now. Call it
// periodically and once at end of simulation; it is idempotent per
// tick, and charging an N-cycle window in one call is exactly
// equivalent to charging it cycle by cycle.
func (m *Model) AdvanceBackground(now sim.Tick) {
	if now <= m.lastBG {
		return
	}
	m.bgTicks += uint64(now - m.lastBG)
	m.lastBG = now
}

// ReadPJ returns accumulated sensing energy in pJ.
func (m *Model) ReadPJ() float64 { return float64(m.sumBitsSensed()) * m.readPJPerBit }

// WritePJ returns accumulated write energy in pJ.
func (m *Model) WritePJ() float64 { return float64(m.sumBitsWrit()) * m.writePJPerBit }

// BackgroundPJ returns accumulated background energy in pJ.
func (m *Model) BackgroundPJ() float64 {
	return m.bgPJPerBit * m.rowBufferBits * m.banks * float64(m.bgTicks) / float64(m.bgWindow)
}

// TotalPJ returns total energy in pJ.
func (m *Model) TotalPJ() float64 { return m.ReadPJ() + m.WritePJ() + m.BackgroundPJ() }

// Senses returns the number of sensing operations charged.
func (m *Model) Senses() uint64 {
	n := m.reads
	for _, s := range m.shards {
		n += s.reads
	}
	return n
}

// Writes returns the number of write operations charged.
func (m *Model) Writes() uint64 {
	n := m.writes
	for _, s := range m.shards {
		n += s.writes
	}
	return n
}

// BitsSensed returns the total cells sensed.
func (m *Model) BitsSensed() uint64 { return m.sumBitsSensed() }

// BitsWritten returns the total cells programmed.
func (m *Model) BitsWritten() uint64 { return m.sumBitsWrit() }

func (m *Model) sumBitsSensed() uint64 {
	n := m.bitsSensed
	for _, s := range m.shards {
		n += s.bitsSensed
	}
	return n
}

func (m *Model) sumBitsWrit() uint64 {
	n := m.bitsWrit
	for _, s := range m.shards {
		n += s.bitsWrit
	}
	return n
}
