// The parallel multi-channel engine (ROADMAP item 1): conservative
// parallel discrete-event simulation over the per-channel shards the
// ownership analyzers pin down. The run loop owns the clock and the
// cores; whenever every live core is provably blocked it computes a
// lookahead window no cross-channel effect can intrude on, hands the
// window to the controller's per-channel workers, and serializes the
// results at the barrier in (tick, channel, seq) order — producing
// Result JSON and Perfetto trace bytes identical to the serial engine.
//
// Two window derivations exist, tried in order:
//
// Channel-local windows (this PR). The reference derivation below must
// close every window at the engine's next event, because a completion
// wakes a core and core stepping is engine-side — so on memory-bound
// phases windows are capped at MinCompletionLatency no matter how
// little the channels interact. The local derivation removes that cap:
// if every live core certifies a single-channel affinity
// (cpu.AffinityHorizon — its in-flight completions, pending retries,
// held access and next few trace accesses all decode to one channel),
// and every finished core's residual in-flights are confined to one
// channel, then for a provable stretch no event crosses a channel
// boundary. The loop steals the engine's pending events
// (sim.ExtractArgEvents), routes them to the owning shards, and
// Controller.StepWindowLocal lets each shard fire its completions,
// wake and step its owned cores, accept their re-issued requests and
// keep scheduling — the window extends to the earliest cross-channel
// interaction across the cores' horizons. The barrier replays every
// captured effect in serial (tick, slot/channel, seq) order, so
// byte-identity holds exactly as for reference windows; the horizon
// math is sound because AffinityHorizon under-approximates (rate and
// completion bounds both lower-bound the first cross-channel fetch)
// and because stolen completions carry exact due ticks. Local windows
// additionally require (checked once per run, before arming the
// affinity classifier):
//
//   - eviction safety: the address layout's channel bits lie inside
//     the LLC's set-index window, so a dirty eviction's victim line is
//     on the inserted line's channel and an affine access can only
//     mint an affine writeback (Mapper.ChannelBitWindow within
//     LLC.IndexWindow; trivial with one channel or no LLC);
//   - stream exclusivity: the affinity analysis peeks each core's
//     trace stream, which is transparent to that core's own fetch path
//     but would consume another core's accesses if two cores shared
//     one Stream object — possible only through Options.Streams, so
//     aliased streams disable local delivery rather than perturb.
//
// Reference derivation (Options.DisableLocalDelivery, and the fallback
// whenever affinity cannot be certified). At a boundary tick T with
// all live cores blocked, the window [T, W) is sound when nothing
// outside a shard can observe or influence shard state strictly inside
// it:
//
//   - W <= the engine's next event tick: no completion (or any other
//     event) fires inside the window, so cores stay blocked and
//     inflight stays constant;
//   - W <= T + MinCompletionLatency: a completion a shard schedules at
//     window tick t lands at or after t+MinCompletionLatency >= W, so
//     replaying schedules at the barrier (engine clock still at T)
//     never schedules into the past and dispatch order is unchanged;
//   - for every blocked core waiting to retry a rejected request on
//     channel ch: if ch would issue at T the window collapses to one
//     tick (an issue can free queue space, flipping WouldAccept at
//     T+1 — the serial loop would see that); otherwise W <= that
//     channel's next flip tick + 1, since until then the channel
//     provably cannot issue and the retry stays futile. Queue-space
//     relief is the only way a blocked core's state can change without
//     an engine event: WouldAccept flips false→true only when the
//     shard issues from the full queue (no enqueue can create a new
//     forwarding match mid-window, because nothing enqueues mid-window).
//
// The retry-collapse rule applies only to reference windows: inside a
// local window the owned cores actually step every tick, so a retry
// that stops being futile simply executes, shard-side, at the exact
// tick the serial loop would have executed it.
//
// Cores skip the window's interior exactly as the serial fast-forward
// skips quiescent stretches: batch-credited stall cycles and weighted
// rejected-retry telemetry (the PR 4 machinery, proven byte-exact).
// Single-tick windows degenerate to the serial path — Controller.Cycle
// inline on this goroutine — so phases with unblocked cores run the
// reference code with zero parallel overhead.
package fgnvm

import (
	"context"
	"reflect"

	"repro/internal/controller"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// affinityPeekCap bounds the trace-stream lookahead per affinity
// probe. Reaching the cap is treated as an immediate cross-channel
// access (conservative), so the cap trades window width for probe
// cost; 64 accesses cover several ROB refills at typical miss rates.
const affinityPeekCap = 64

// localWindowCap bounds one local-delivery window. Horizons can be
// unbounded (a core whose stream ends affine certifies sim.MaxTick),
// and the barrier's hook-emulation bookkeeping is O(width), so very
// wide windows are chunked at this cap — pure engine-side pacing,
// invisible to results.
const localWindowCap = sim.Tick(1 << 16)

// engineAccum collects the run-loop side of the engine observability
// counters (Result.Engine): windows opened and their width
// distribution. The controller-side counters live in
// controller.EngineCounters.
type engineAccum struct {
	windows      uint64
	localWindows uint64
	width        stats.Histogram
}

// localDeliveryViable reports the per-run preconditions for
// channel-local event delivery (see the file comment): eviction safety
// of the address layout against every core's LLC, and pairwise
// distinct trace streams. Called once before arming the cores'
// affinity classifiers; a false return leaves the classifiers unarmed,
// which makes every affinity probe refuse and the engine fall back to
// reference windows.
func localDeliveryViable(ctrl *controller.Controller, slots []*coreSlot, streams []trace.Stream) bool {
	chLo, chHi := ctrl.ChannelBitWindow()
	if chLo != chHi { // multi-channel: victim channel must be set-determined
		for _, s := range slots {
			if s.llc == nil {
				continue // no cache, no evictions
			}
			lo, hi := s.llc.IndexWindow()
			if chLo < lo || chHi > hi {
				return false
			}
		}
	}
	return streamsDistinct(streams)
}

// streamsDistinct reports whether no two cores share a Stream object.
// The internal workload builders always mint per-core streams; only
// Options.Streams can alias. Pointer-shaped streams are compared by
// identity; value-shaped ones cannot be proved exclusive (and could
// not advance through a value receiver anyway), so they refuse.
func streamsDistinct(streams []trace.Stream) bool {
	if len(streams) < 2 {
		return true
	}
	seen := make(map[uintptr]struct{}, len(streams))
	for _, s := range streams {
		v := reflect.ValueOf(s)
		switch v.Kind() {
		case reflect.Pointer, reflect.Map, reflect.Chan, reflect.Func, reflect.UnsafePointer:
			p := v.Pointer()
			if _, dup := seen[p]; dup {
				return false
			}
			seen[p] = struct{}{}
		default:
			return false
		}
	}
	return true
}

// runParallel is the windowed engine behind RunContext for the NVM
// designs. It returns the final tick, like runSerial; the deferred
// StopWorkers releases the controller's window workers on every exit
// path, including context cancellation mid-run.
func runParallel(ctx context.Context, o Options, eng *sim.Engine, ctrl *controller.Controller, slots []*coreSlot, ea *engineAccum) (sim.Tick, error) {
	defer ctrl.StopWorkers()
	lmin := ctrl.MinCompletionLatency()

	// Local-delivery working state, reused across windows. dueMap
	// resolves a stolen completion's request to its exact due tick —
	// the completion bound that makes horizons wide on memory-bound
	// phases (see cpu.AffinityHorizon).
	var (
		stolen []sim.StolenEvent
		owned  []controller.LocalCore
		dueMap = make(map[*mem.Request]sim.Tick)
	)
	unknownDue := func(*mem.Request) (sim.Tick, bool) { return 0, false }
	knownDue := func(r *mem.Request) (sim.Tick, bool) {
		t, ok := dueMap[r]
		return t, ok
	}
	// reinsert returns stolen events to the engine on a fallback path.
	// ExtractArgEvents returns them sorted by (When, Seq) and the
	// engine assigns fresh monotone seqs, so relative dispatch order —
	// the only thing seq decides — is preserved.
	reinsert := func() {
		for i := range stolen {
			eng.ScheduleArg(stolen[i].When, stolen[i].Fn, stolen[i].Arg)
		}
	}

	var now sim.Tick
	for ; now < o.MaxCycles; now++ {
		if now&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		eng.RunUntil(now)
		allDone := true
		for _, s := range slots {
			if s.done {
				continue
			}
			s.core.Cycle(now)
			if s.core.Finished() {
				s.done = true
				s.finished = now
			} else {
				allDone = false
			}
		}

		// Window decision. Default: a single serial tick. A wider window
		// needs every live core blocked — when a core is running, its
		// next cycle can enqueue, and enqueues are engine-side effects
		// that must interleave with shard scheduling at serial order.
		target := now + 1
		blocked := true
		for _, s := range slots {
			if !s.done && !s.core.Blocked() {
				blocked = false
				break
			}
		}
		drainedOut := allDone && ctrl.Drained()
		if blocked && !drainedOut {
			target = eng.NextEventTick()
			if t := now + lmin; t < target {
				target = t
			}
			if target > o.MaxCycles {
				target = o.MaxCycles
			}
			for _, s := range slots {
				if s.done {
					continue
				}
				r := s.core.RetryRequest()
				if r == nil {
					continue
				}
				ch := ctrl.ChannelOf(r)
				if ctrl.ShardWouldIssue(ch, now) {
					target = now + 1
					break
				}
				if nw := ctrl.ShardNextWork(ch, now); nw < sim.MaxTick && nw+1 < target {
					target = nw + 1
				}
			}
		}

		// Local-delivery attempt: certify a single-channel affinity for
		// every core, steal the engine's events, and derive a window
		// bounded by the earliest cross-channel interaction instead of
		// the next completion. Engaged only when it strictly beats the
		// reference target; every bail-out path reinserts the stolen
		// events and falls through to the reference machinery below.
		if !o.DisableLocalDelivery && blocked && !drainedOut && target < o.MaxCycles {
			feasible := true
			queuedDue := now + lmin
			for _, s := range slots {
				if s.done {
					// A finished core is touched only by its residual
					// completions' callbacks (which never enqueue), so
					// single-channel confinement of its in-flights is
					// enough to hand it to that shard.
					if _, ok := s.core.InflightSingleChannel(); !ok {
						feasible = false
						break
					}
				} else if _, _, ok := s.core.AffinityHorizon(now, affinityPeekCap, unknownDue, queuedDue); !ok {
					feasible = false
					break
				}
			}
			if feasible {
				if st, ok := eng.ExtractArgEvents(stolen[:0]); ok {
					stolen = st
					clear(dueMap)
					argsOK := true
					for i := range stolen {
						r, isReq := stolen[i].Arg.(*mem.Request)
						if !isReq {
							argsOK = false
							break
						}
						dueMap[r] = stolen[i].When
					}
					w := sim.MaxTick
					owned = owned[:0]
					if argsOK {
						for i, s := range slots {
							if s.done {
								ch, _ := s.core.InflightSingleChannel()
								if ch == -1 {
									continue // nothing in flight: no event can touch it
								}
								owned = append(owned, controller.LocalCore{
									Slot: int32(i), Channel: ch, Done: true, Core: s.core,
								})
								continue
							}
							ch, h, ok := s.core.AffinityHorizon(now, affinityPeekCap, knownDue, queuedDue)
							if !ok {
								argsOK = false
								break
							}
							if h < w {
								w = h
							}
							owned = append(owned, controller.LocalCore{
								Slot: int32(i), Channel: ch, Core: s.core,
							})
						}
					}
					if c := now + localWindowCap; w > c {
						w = c
					}
					if w > o.MaxCycles {
						w = o.MaxCycles
					}
					if argsOK && w > target {
						ea.windows++
						ea.localWindows++
						ea.width.Observe(uint64(w - now))
						_, fins, end, over := ctrl.StepWindowLocal(now, w, o.DisableFastForward, owned, stolen)
						for _, f := range fins {
							sl := slots[f.Slot]
							sl.done = true
							sl.finished = f.Tick
						}
						if over {
							// The run completed inside the window: end is
							// the tick the serial loop would have exited
							// on (see StepWindowLocal).
							now = end
							break
						}
						now = w - 1 // the loop increment lands exactly on w
						if err := ctx.Err(); err != nil {
							return 0, err
						}
						continue
					}
					reinsert()
				}
			}
		}

		if target <= now+1 {
			ctrl.Cycle(now)
			if drainedOut {
				break
			}
			continue
		}

		if !o.DisableFastForward {
			if nw := ctrl.NextWork(now); nw >= target {
				// No shard can act strictly inside the window: it
				// degenerates to the serial fast-forward — one inline
				// cycle plus batch credits, no worker handoff.
				if ctrl.Cycle(now) != 0 {
					continue
				}
				skip := uint64(target - now - 1)
				for _, s := range slots {
					if s.done {
						continue
					}
					s.core.SkipStallCycles(skip)
					if r := s.core.RetryRequest(); r != nil {
						ctrl.SkipRejects(r, now, skip)
					}
				}
				ctrl.SkipCycles(now, skip)
				now = target - 1
				if err := ctx.Err(); err != nil {
					return 0, err
				}
				continue
			}
		}

		ea.windows++
		ea.width.Observe(uint64(target - now))
		ctrl.StepWindow(now, target, o.DisableFastForward)
		skip := uint64(target - now - 1)
		for _, s := range slots {
			if s.done {
				continue
			}
			s.core.SkipStallCycles(skip)
			if r := s.core.RetryRequest(); r != nil {
				ctrl.SkipRejects(r, now, skip)
			}
		}
		now = target - 1 // the loop increment lands exactly on target
		// Large windows starve the masked cancellation poll above, so
		// re-check after every window, like the serial fast-forward.
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	return now, nil
}
