// The parallel multi-channel engine (ROADMAP item 1): conservative
// parallel discrete-event simulation over the per-channel shards the
// ownership analyzers pin down. The run loop owns the clock and the
// cores; whenever every live core is provably blocked it computes a
// lookahead window no cross-channel effect can intrude on, hands the
// window to the controller's per-channel workers, and serializes the
// results at the barrier in (tick, channel, seq) order — producing
// Result JSON and Perfetto trace bytes identical to the serial engine.
//
// Window derivation. At a boundary tick T with all live cores blocked,
// the window [T, W) is sound when nothing outside a shard can observe
// or influence shard state strictly inside it:
//
//   - W <= the engine's next event tick: no completion (or any other
//     event) fires inside the window, so cores stay blocked and
//     inflight stays constant;
//   - W <= T + MinCompletionLatency: a completion a shard schedules at
//     window tick t lands at or after t+MinCompletionLatency >= W, so
//     replaying schedules at the barrier (engine clock still at T)
//     never schedules into the past and dispatch order is unchanged;
//   - for every blocked core waiting to retry a rejected request on
//     channel ch: if ch would issue at T the window collapses to one
//     tick (an issue can free queue space, flipping WouldAccept at
//     T+1 — the serial loop would see that); otherwise W <= that
//     channel's next flip tick + 1, since until then the channel
//     provably cannot issue and the retry stays futile. Queue-space
//     relief is the only way a blocked core's state can change without
//     an engine event: WouldAccept flips false→true only when the
//     shard issues from the full queue (no enqueue can create a new
//     forwarding match mid-window, because nothing enqueues mid-window).
//
// Cores skip the window's interior exactly as the serial fast-forward
// skips quiescent stretches: batch-credited stall cycles and weighted
// rejected-retry telemetry (the PR 4 machinery, proven byte-exact).
// Single-tick windows degenerate to the serial path — Controller.Cycle
// inline on this goroutine — so phases with unblocked cores run the
// reference code with zero parallel overhead.
package fgnvm

import (
	"context"

	"repro/internal/controller"
	"repro/internal/sim"
)

// runParallel is the windowed engine behind RunContext for the NVM
// designs. It returns the final tick, like runSerial; the deferred
// StopWorkers releases the controller's window workers on every exit
// path, including context cancellation mid-run.
func runParallel(ctx context.Context, o Options, eng *sim.Engine, ctrl *controller.Controller, slots []*coreSlot) (sim.Tick, error) {
	defer ctrl.StopWorkers()
	lmin := ctrl.MinCompletionLatency()
	var now sim.Tick
	for ; now < o.MaxCycles; now++ {
		if now&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		eng.RunUntil(now)
		allDone := true
		for _, s := range slots {
			if s.done {
				continue
			}
			s.core.Cycle(now)
			if s.core.Finished() {
				s.done = true
				s.finished = now
			} else {
				allDone = false
			}
		}

		// Window decision. Default: a single serial tick. A wider window
		// needs every live core blocked — when a core is running, its
		// next cycle can enqueue, and enqueues are engine-side effects
		// that must interleave with shard scheduling at serial order.
		target := now + 1
		blocked := true
		for _, s := range slots {
			if !s.done && !s.core.Blocked() {
				blocked = false
				break
			}
		}
		drainedOut := allDone && ctrl.Drained()
		if blocked && !drainedOut {
			target = eng.NextEventTick()
			if t := now + lmin; t < target {
				target = t
			}
			if target > o.MaxCycles {
				target = o.MaxCycles
			}
			for _, s := range slots {
				if s.done {
					continue
				}
				r := s.core.RetryRequest()
				if r == nil {
					continue
				}
				ch := ctrl.ChannelOf(r)
				if ctrl.ShardWouldIssue(ch, now) {
					target = now + 1
					break
				}
				if nw := ctrl.ShardNextWork(ch, now); nw < sim.MaxTick && nw+1 < target {
					target = nw + 1
				}
			}
		}

		if target <= now+1 {
			ctrl.Cycle(now)
			if drainedOut {
				break
			}
			continue
		}

		if !o.DisableFastForward {
			if nw := ctrl.NextWork(now); nw >= target {
				// No shard can act strictly inside the window: it
				// degenerates to the serial fast-forward — one inline
				// cycle plus batch credits, no worker handoff.
				if ctrl.Cycle(now) != 0 {
					continue
				}
				skip := uint64(target - now - 1)
				for _, s := range slots {
					if s.done {
						continue
					}
					s.core.SkipStallCycles(skip)
					if r := s.core.RetryRequest(); r != nil {
						ctrl.SkipRejects(r, now, skip)
					}
				}
				ctrl.SkipCycles(now, skip)
				now = target - 1
				if err := ctx.Err(); err != nil {
					return 0, err
				}
				continue
			}
		}

		ctrl.StepWindow(now, target, o.DisableFastForward)
		skip := uint64(target - now - 1)
		for _, s := range slots {
			if s.done {
				continue
			}
			s.core.SkipStallCycles(skip)
			if r := s.core.RetryRequest(); r != nil {
				ctrl.SkipRejects(r, now, skip)
			}
		}
		now = target - 1 // the loop increment lands exactly on target
		// Large windows starve the masked cancellation poll above, so
		// re-check after every window, like the serial fast-forward.
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	return now, nil
}
