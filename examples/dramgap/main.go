// Command dramgap quantifies the framing of the paper's Section 2: how
// far the PCM baseline trails a conventional DDR3-class DRAM on the
// same workload, and how much of that gap FgNVM's tile-level
// parallelism recovers — without paying DRAM's refresh, restore, and
// volatility costs.
//
// Run with:
//
//	go run ./examples/dramgap [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	fgnvm "repro"
)

func main() {
	bench := "mcf"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	const instructions = 100_000

	run := func(d fgnvm.Design, lanes int) fgnvm.Result {
		r, err := fgnvm.Run(fgnvm.Options{
			Design: d, SAGs: 8, CDs: 8, IssueLanes: lanes,
			Benchmark: bench, Instructions: instructions,
		})
		if err != nil {
			log.Fatalf("%v: %v", d, err)
		}
		return r
	}

	dram := run(fgnvm.DesignDRAM, 0)
	pcm := run(fgnvm.DesignBaseline, 0)
	fg := run(fgnvm.DesignFgNVM, 0)
	mi := run(fgnvm.DesignFgNVMMultiIssue, 0)

	gap := dram.IPC - pcm.IPC
	closed := func(r fgnvm.Result) float64 {
		if gap <= 0 {
			return 0
		}
		return (r.IPC - pcm.IPC) / gap * 100
	}

	fmt.Printf("the DRAM-PCM gap on %s (%d instructions)\n\n", bench, instructions)
	fmt.Printf("%-22s %8s %12s %14s\n", "memory", "IPC", "read latency", "gap recovered")
	fmt.Printf("%-22s %8.4f %9.1f cy %14s\n", "DDR3-class DRAM", dram.IPC, dram.AvgReadLatency, "(reference)")
	fmt.Printf("%-22s %8.4f %9.1f cy %13.1f%%\n", "PCM baseline", pcm.IPC, pcm.AvgReadLatency, 0.0)
	fmt.Printf("%-22s %8.4f %9.1f cy %13.1f%%\n", "FgNVM 8x8", fg.IPC, fg.AvgReadLatency, closed(fg))
	fmt.Printf("%-22s %8.4f %9.1f cy %13.1f%%\n", "FgNVM 8x8 multi-issue", mi.IPC, mi.AvgReadLatency, closed(mi))

	fmt.Println()
	fmt.Println("DRAM pays for its speed with refresh, destructive reads and")
	fmt.Println("volatility; FgNVM narrows the performance gap architecturally")
	fmt.Println("while keeping PCM's capacity and non-volatility.")
}
