// Command writeheavy demonstrates Backgrounded Writes — the FgNVM
// access mode that attacks PCM's long programming latency. It builds a
// write-intensive workload (modeled on lbm's streaming writeback
// behaviour) and shows how much read service continues during writes on
// each design: the baseline bank blocks every read while a 150 ns write
// pulse train completes; FgNVM keeps 1 - 1/SAGs - 1/CDs of the bank
// readable.
//
// Run with:
//
//	go run ./examples/writeheavy
package main

import (
	"fmt"
	"log"

	fgnvm "repro"
)

func main() {
	const instructions = 100_000

	fmt.Println("write-heavy workload (lbm): read service during PCM writes")
	fmt.Println()
	fmt.Printf("%-22s %8s %10s %12s %14s\n",
		"design", "IPC", "rd latency", "wr latency", "reads-in-write")

	type cfg struct {
		name string
		opts fgnvm.Options
	}
	for _, c := range []cfg{
		{"baseline", fgnvm.Options{Design: fgnvm.DesignBaseline}},
		{"fgnvm 8x2", fgnvm.Options{Design: fgnvm.DesignFgNVM, SAGs: 8, CDs: 2}},
		{"fgnvm 8x8", fgnvm.Options{Design: fgnvm.DesignFgNVM, SAGs: 8, CDs: 8}},
		{"fgnvm 8x8 multiissue", fgnvm.Options{Design: fgnvm.DesignFgNVMMultiIssue, SAGs: 8, CDs: 8}},
	} {
		o := c.opts
		o.Benchmark = "lbm"
		o.Instructions = instructions
		res, err := fgnvm.Run(o)
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		fmt.Printf("%-22s %8.4f %10.1f %12.1f %9d/%d\n",
			c.name, res.IPC, res.AvgReadLatency, res.AvgWriteLatency,
			res.BackgroundedRds, res.Reads)
	}

	fmt.Println()
	fmt.Println("reads-in-write counts reads that completed while a write was")
	fmt.Println("programming in the same bank — impossible on the baseline.")
}
