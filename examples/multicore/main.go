// Command multicore runs the chip-multiprocessor extension of the
// paper's evaluation: several cores with private caches sharing one
// FgNVM memory system. The more cores contend for the memory, the more
// bank-internal parallelism matters, so FgNVM's speedup over the
// baseline *grows* with core count — the trend this example prints.
//
// Run with:
//
//	go run ./examples/multicore
package main

import (
	"fmt"
	"log"

	fgnvm "repro"
)

func main() {
	const instructions = 50_000

	fmt.Println("FgNVM speedup vs core count (mcf copies, shared memory system)")
	fmt.Println()
	fmt.Printf("%6s %14s %12s %12s %14s\n",
		"cores", "baseline IPC", "fgnvm 8x2", "multi-issue", "fairness(min/max)")

	for _, cores := range []int{1, 2, 4} {
		base, err := fgnvm.Run(fgnvm.Options{
			Design: fgnvm.DesignBaseline, Benchmark: "mcf",
			Cores: cores, Instructions: instructions,
		})
		if err != nil {
			log.Fatal(err)
		}
		fg, err := fgnvm.Run(fgnvm.Options{
			Design: fgnvm.DesignFgNVM, SAGs: 8, CDs: 2, Benchmark: "mcf",
			Cores: cores, Instructions: instructions,
		})
		if err != nil {
			log.Fatal(err)
		}
		mi, err := fgnvm.Run(fgnvm.Options{
			Design: fgnvm.DesignFgNVMMultiIssue, SAGs: 8, CDs: 2, Benchmark: "mcf",
			Cores: cores, Instructions: instructions,
		})
		if err != nil {
			log.Fatal(err)
		}
		fairness := 1.0
		if fg.MaxCoreIPC > 0 {
			fairness = fg.MinCoreIPC / fg.MaxCoreIPC
		}
		fmt.Printf("%6d %14.3f %11.2fx %11.2fx %14.2f\n",
			cores, base.IPC, fg.SpeedupOver(base), mi.SpeedupOver(base), fairness)
	}

	fmt.Println()
	fmt.Println("A heterogeneous mix shares the memory the same way:")
	mix, err := fgnvm.Run(fgnvm.Options{
		Design: fgnvm.DesignFgNVM, SAGs: 8, CDs: 2,
		Mix: []string{"mcf", "lbm", "libquantum"}, Instructions: instructions,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s: throughput %.3f IPC across %d cores\n",
		mix.Benchmark, mix.IPC, mix.Cores)
}
