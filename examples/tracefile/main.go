// Command tracefile shows the trace-file workflow: synthesize a
// workload, persist it in the simulator's text trace format, read it
// back, and drive two different memory designs from the identical
// request stream — the apples-to-apples comparison mode.
//
// Run with:
//
//	go run ./examples/tracefile
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	fgnvm "repro"
	"repro/internal/trace"
)

func main() {
	profile, ok := trace.ProfileByName("omnetpp")
	if !ok {
		log.Fatal("omnetpp profile missing")
	}

	// 1. Synthesize and persist a trace.
	path := filepath.Join(os.TempDir(), "fgnvm-example-omnetpp.trc")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	gen := trace.NewGenerator(profile, 64, 4096, 42)
	const accesses = 5_000
	if _, err := trace.WriteTrace(f, gen, accesses); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d accesses to %s\n", accesses, path)

	// 2. Read it back.
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	accs, err := trace.ReadTrace(rf)
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back %d accesses\n\n", len(accs))

	// 3. Replay the identical stream on two designs. A fresh
	// SliceStream per run keeps the comparison exact.
	for _, d := range []fgnvm.Design{fgnvm.DesignBaseline, fgnvm.DesignFgNVM} {
		res, err := fgnvm.Run(fgnvm.Options{
			Design: d, SAGs: 8, CDs: 2,
			Stream:  trace.NewSliceStream(accs),
			SkipLLC: true, // the trace already is a memory-level stream
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s cycles=%-8d IPC=%.4f avg read latency=%.1f cycles\n",
			res.Design, res.Cycles, res.IPC, res.AvgReadLatency)
	}

	_ = os.Remove(path)
}
