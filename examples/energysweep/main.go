// Command energysweep walks the column-division axis of the design
// space (the experiment behind Figure 5) for one benchmark: it holds
// the SAG count at 8 and doubles CDs from 1 to 32, printing the memory
// energy split after each run. Partial-Activation senses row/CDs bytes
// per activation, so read energy falls with every doubling while the
// write and background components form the floor the paper describes.
//
// Run with:
//
//	go run ./examples/energysweep [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	fgnvm "repro"
)

func main() {
	bench := "mcf"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	const instructions = 100_000

	base, err := fgnvm.Run(fgnvm.Options{
		Design: fgnvm.DesignBaseline, Benchmark: bench, Instructions: instructions,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("energy sweep over column divisions — %s, baseline = %.1f nJ\n\n", bench, base.Energy.TotalPJ/1000)
	fmt.Printf("%-8s %10s %10s %10s %10s %10s\n",
		"design", "read nJ", "write nJ", "bg nJ", "total nJ", "relative")
	fmt.Printf("%-8s %10.1f %10.1f %10.1f %10.1f %10.3f\n", "baseline",
		base.Energy.ReadPJ/1000, base.Energy.WritePJ/1000,
		base.Energy.BackgroundPJ/1000, base.Energy.TotalPJ/1000, 1.0)

	for cds := 1; cds <= 32; cds *= 2 {
		r, err := fgnvm.Run(fgnvm.Options{
			Design: fgnvm.DesignFgNVM, SAGs: 8, CDs: cds,
			Benchmark: bench, Instructions: instructions,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("8x%-6d %10.1f %10.1f %10.1f %10.1f %10.3f\n", cds,
			r.Energy.ReadPJ/1000, r.Energy.WritePJ/1000,
			r.Energy.BackgroundPJ/1000, r.Energy.TotalPJ/1000,
			r.RelativeEnergy(base))
	}

	fmt.Println("\nread energy halves per CD doubling (Partial-Activation);")
	fmt.Println("write + background energy do not scale — the non-ideal floor of Figure 5.")
}
