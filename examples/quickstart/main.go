// Command quickstart is the smallest complete use of the fgnvm API:
// it simulates one memory-intensive benchmark on the baseline NVM and
// on the FgNVM design, and prints the speedup and energy saving —
// the paper's two headline metrics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	fgnvm "repro"
)

func main() {
	const benchmark = "mcf"
	const instructions = 100_000

	base, err := fgnvm.Run(fgnvm.Options{
		Design:       fgnvm.DesignBaseline,
		Benchmark:    benchmark,
		Instructions: instructions,
	})
	if err != nil {
		log.Fatalf("baseline run: %v", err)
	}

	fg, err := fgnvm.Run(fgnvm.Options{
		Design:       fgnvm.DesignFgNVM,
		SAGs:         8,
		CDs:          2,
		Benchmark:    benchmark,
		Instructions: instructions,
	})
	if err != nil {
		log.Fatalf("fgnvm run: %v", err)
	}

	fmt.Printf("benchmark          %s (%d instructions)\n", benchmark, instructions)
	fmt.Printf("baseline           IPC=%.4f  cycles=%-8d  energy=%.1f nJ\n",
		base.IPC, base.Cycles, base.Energy.TotalPJ/1000)
	fmt.Printf("fgnvm 8x2          IPC=%.4f  cycles=%-8d  energy=%.1f nJ\n",
		fg.IPC, fg.Cycles, fg.Energy.TotalPJ/1000)
	fmt.Printf("speedup            %.2fx\n", fg.SpeedupOver(base))
	fmt.Printf("relative energy    %.2f (lower is better)\n", fg.RelativeEnergy(base))
	fmt.Printf("reads under write  %d of %d reads\n", fg.BackgroundedRds, fg.Reads)
}
