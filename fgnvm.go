// Package fgnvm is the public API of the FgNVM reproduction: a
// simulator for fine-granularity tile-level parallelism in non-volatile
// memory with two-dimensional bank subdivision (Poremba, Zhang, Xie —
// DAC 2016).
//
// The package assembles the full evaluation stack — synthetic SPEC-like
// workload, last-level cache, ROB-windowed core, FR-FCFS memory
// controller, and the FgNVM bank models — and runs one simulation per
// call:
//
//	res, err := fgnvm.Run(fgnvm.Options{
//	    Design:    fgnvm.DesignFgNVM,
//	    SAGs:      8,
//	    CDs:       2,
//	    Benchmark: "mcf",
//	})
//	fmt.Println(res.IPC, res.Energy.TotalPJ)
//
// Design points reproduce the paper's comparison systems: the baseline
// NVM prototype, FgNVM (with all three access modes), FgNVM with the
// augmented multi-issue FR-FCFS controller, the idealized many-banks
// memory, a SALP-style one-dimensional subdivision, and a DDR3-class
// DRAM reference. Options further select multi-programmed core counts,
// PCM or RRAM cells, an analytic device model, and per-mode ablations;
// Figure4, Figure5, Table1 and Summary regenerate the paper's
// evaluation artifacts directly.
package fgnvm

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/addr"
	"repro/internal/bank"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/device"
	"repro/internal/dram"
	"repro/internal/energy"
	"repro/internal/gemm"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/timing"
	"repro/internal/trace"
)

// Design selects one of the evaluated memory architectures.
type Design int

const (
	// DesignBaseline is the prototype NVM bank [13]: one global row
	// buffer per bank, full-row sensing, serialized operations.
	DesignBaseline Design = iota
	// DesignFgNVM is the paper's proposal: SAGs×CDs tile grid with
	// Partial-Activation, Multi-Activation and Backgrounded Writes.
	DesignFgNVM
	// DesignFgNVMMultiIssue additionally lets the controller issue
	// multiple commands per cycle and return data on a wider bus
	// (Figure 4's "FGNVM+Multi-Issue" bars).
	DesignFgNVMMultiIssue
	// DesignManyBanks is Figure 4's idealized comparison: SAGs×CDs×banks
	// independent banks, each sized like one (SAG, CD) pair.
	DesignManyBanks
	// DesignSALP is a one-dimensional subdivision (SAGs subarrays, one
	// CD): the DRAM SALP analogue used in the ablation studies.
	DesignSALP
	// DesignDRAM is a conventional DDR3-style DRAM memory — destructive
	// reads (tRAS restore), precharge (tRP), periodic refresh — the
	// technology whose constraints Section 2 contrasts against NVM.
	// Performance-only: DRAM energy is not modeled.
	DesignDRAM
)

var designNames = map[Design]string{
	DesignBaseline:        "baseline",
	DesignFgNVM:           "fgnvm",
	DesignFgNVMMultiIssue: "fgnvm-multiissue",
	DesignManyBanks:       "manybanks",
	DesignSALP:            "salp",
	DesignDRAM:            "dram",
}

func (d Design) String() string {
	if n, ok := designNames[d]; ok {
		return n
	}
	return fmt.Sprintf("Design(%d)", int(d))
}

// ParseDesign maps a name (as printed by String) back to a Design.
func ParseDesign(name string) (Design, error) {
	for d, n := range designNames {
		if n == name {
			return d, nil
		}
	}
	return 0, fmt.Errorf("fgnvm: unknown design %q (want one of baseline, fgnvm, fgnvm-multiissue, manybanks, salp, dram)", name)
}

// Designs returns all designs in a stable order.
func Designs() []Design {
	return []Design{DesignBaseline, DesignFgNVM, DesignFgNVMMultiIssue, DesignManyBanks, DesignSALP, DesignDRAM}
}

// Options configures one simulation. The zero value plus a Benchmark
// name runs the paper's setup: baseline design, Table 2 geometry and
// timings, 200 k instructions.
type Options struct {
	Design Design

	// SAGs and CDs set the FgNVM/SALP subdivision. Default 8×2, the
	// configuration of Figure 4. Ignored by DesignBaseline.
	SAGs, CDs int

	// Benchmark names a built-in SPEC2006-like profile (see
	// trace.Profiles). Exactly one workload source must be set:
	// Benchmark/Mix, Stream, Streams, or Workload.
	Benchmark string
	// Stream supplies a custom access stream instead of a benchmark
	// (single core).
	Stream trace.Stream
	// Streams supplies one custom access stream per core — the
	// multi-programmed form of Stream. Cores, if set, must match
	// len(Streams). Streams share the memory system as-is: callers
	// wanting disjoint regions wrap them in trace.NewOffset.
	Streams []trace.Stream
	// Workload lowers a GEMM/GEMV shape (a named LLM-layer preset or an
	// explicit M×K×N) into a tile-aware access stream via internal/gemm;
	// Cores > 1 partitions the one GEMM across the cores.
	Workload *WorkloadSpec

	// Cores runs a multi-programmed workload: N copies of Benchmark
	// (differently seeded, disjoint address regions) on private cores
	// and LLCs sharing the one memory system. Default 1. The paper
	// evaluates single-core; this is the natural CMP extension, where
	// memory contention amplifies the value of tile-level parallelism.
	Cores int
	// Mix runs a heterogeneous multi-programmed workload: one core per
	// named benchmark. Overrides Benchmark/Cores when non-empty.
	Mix []string

	// Instructions is the retire budget (default 200 000 — the
	// SimPoint-slice stand-in).
	Instructions uint64
	// Seed perturbs the workload generator (default 1).
	Seed uint64

	// UseLLC interposes a 2 MiB 16-way LLC between the stream and the
	// memory system (dirty evictions become writebacks). Default true;
	// set SkipLLC to disable.
	SkipLLC bool

	// WarmupAccesses pre-fills the LLC by running this many accesses of
	// the workload through it before timing starts — the stand-in for
	// the paper's SimPoint checkpoint restore, without which a short
	// run sees only cold misses and no writeback traffic. Default:
	// 2× the LLC's line count. Set negative to disable.
	WarmupAccesses int

	// IssueLanes overrides the controller's command/data lanes.
	// Default: 1, or 4 for DesignFgNVMMultiIssue.
	IssueLanes int

	// Scheduler selects the controller policy (default SchedFRFCFS).
	Scheduler Scheduler

	// Geometry overrides the Table 2 memory organization (advanced).
	Geometry *addr.Geometry
	// Timings overrides the Table 2 PCM timing set (advanced).
	Timings *timing.Timings

	// Device, when set, derives timings and per-bit energies from the
	// NVSim-style analytic array model instead of the Table 2 numbers:
	// specify the process node and tile geometry, and the run uses the
	// latencies/energies that array would have. Mutually exclusive
	// with Timings.
	Device *DeviceParams

	// Core overrides the CPU model parameters (advanced).
	Core CoreParams

	// Technology selects the NVM cell technology: PCM (Table 2, the
	// default) or RRAM (faster switching, lower write energy). Ignored
	// when Timings or Device is set.
	Technology Technology

	// Modes, when non-nil, overrides the access-mode set implied by
	// Design — the knob for per-mode ablations ("what does FgNVM gain
	// from Backgrounded Writes alone?"). Applies to DesignFgNVM and
	// DesignFgNVMMultiIssue only.
	Modes *AccessModeSet

	// MaxCycles aborts a run that exceeds this many memory cycles
	// (default 2 billion — a deadlock backstop, not a tuning knob).
	MaxCycles sim.Tick

	// Telemetry, when non-nil, attaches the observability subsystem:
	// stall attribution (Result.Stalls), the per-tile occupancy matrix
	// (Result.TileOccupancy), and Perfetto trace export. Nil keeps all
	// simulator hooks on their zero-allocation disabled path. Ignored
	// by DesignDRAM (the reference system is not instrumented).
	Telemetry *TelemetryOptions

	// DisableFastForward forces the run loop to execute every
	// controller cycle even when all cores are provably memory-blocked
	// and the memory system quiescent. The fast-forward is exact — runs
	// with and without it produce byte-identical Results (enforced by
	// the differential test suite) — so this is a debug/verification
	// knob, not a fidelity trade-off.
	DisableFastForward bool

	// DisableSchedIndex forces the controller's reference scheduling
	// path: per-cycle linear queue scans with no ready memo and no tile
	// candidate index. Like DisableFastForward this is exact either way
	// (byte-identical Results, enforced by a differential suite across
	// every benchmark × design) and exists for verification and for
	// measuring the indexed scheduler's speedup. Ignored by DesignDRAM.
	DisableSchedIndex bool

	// DisableParallelEngine forces the reference serial run loop: one
	// goroutine stepping every channel in turn, no windowed stepping.
	// The parallel engine is conservative parallel DES — channel shards
	// advance concurrently only through windows the run loop has proved
	// free of cross-channel effects, and every effect serializes at the
	// window barrier in (tick, channel, seq) order — so, like the two
	// knobs above, results are byte-identical either way (Result JSON
	// and Perfetto trace bytes, enforced by parallel_test.go across
	// every benchmark × design). This is a verification and measurement
	// knob, not a fidelity trade-off. Ignored by DesignDRAM, which
	// always runs the serial reference loop.
	DisableParallelEngine bool

	// DisableLocalDelivery keeps the parallel engine but forces its
	// reference window derivation: windows close at the global
	// completion horizon (the engine's next event) instead of
	// extending to the next cross-channel interaction, and no core is
	// ever stepped shard-side. Exact either way — Result JSON and
	// Perfetto trace bytes are byte-identical with local delivery on,
	// off, and under the serial engine (enforced by the parallel_test.go
	// differential battery) — so, like the knobs above, this exists for
	// verification and for measuring what local delivery buys. Implied
	// by DisableParallelEngine.
	DisableLocalDelivery bool

	// EngineStats populates Result.Engine with parallel-engine
	// observability: window counts, the window-width distribution, and
	// the local-delivery counters. Opt-in because the serial engine
	// opens no windows — a Result carrying engine counters could never
	// be byte-identical across engines, and cross-engine byte-identity
	// is the differential suites' foundation. Ignored (Result.Engine
	// stays nil) when the serial loop runs. The counters themselves
	// are deterministic: identical runs report identical values.
	EngineStats bool
}

// AccessModeSet selects which of the paper's three access modes are
// enabled, for ablation runs (see Options.Modes).
type AccessModeSet struct {
	PartialActivation  bool
	MultiActivation    bool
	BackgroundedWrites bool
}

// Technology selects the resistive memory cell type. Both satisfy the
// paper's requirement of a large on/off resistance ratio (Section 2).
type Technology int

const (
	// TechPCM is the Table 2 phase-change memory prototype.
	TechPCM Technology = iota
	// TechRRAM is a representative HfOx resistive RAM: ~3× faster
	// writes (50 ns pulses), faster reads, 4 pJ/bit writes.
	TechRRAM
)

func (t Technology) String() string {
	switch t {
	case TechPCM:
		return "pcm"
	case TechRRAM:
		return "rram"
	default:
		return fmt.Sprintf("Technology(%d)", int(t))
	}
}

// rramWritePJPerBit is the RRAM programming energy (HfOx set/reset is
// roughly 4× cheaper than PCM's melt-quench).
const rramWritePJPerBit = 4.0

// DeviceParams describes a PCM array for the analytic device model
// (see internal/device): timings and per-bit energies are derived from
// the geometry instead of taken from Table 2. Zero fields take the
// 20 nm prototype's values (1024×1024 tiles, 32:1 mux, 5 F² cells).
type DeviceParams struct {
	FeatureNm  float64
	TileRows   int
	TileCols   int
	MuxDegree  int
	CellAreaF2 float64
}

func (p DeviceParams) applyDefaults() DeviceParams {
	def := device.Prototype()
	if p.FeatureNm == 0 {
		p.FeatureNm = def.FeatureNm
	}
	if p.TileRows == 0 {
		p.TileRows = def.TileRows
	}
	if p.TileCols == 0 {
		p.TileCols = def.TileCols
	}
	if p.MuxDegree == 0 {
		p.MuxDegree = def.MuxDegree
	}
	if p.CellAreaF2 == 0 {
		p.CellAreaF2 = def.CellAreaF2
	}
	return p
}

// Scheduler selects the memory-controller command scheduling policy.
type Scheduler int

const (
	// SchedFRFCFS is first-ready first-come-first-serve [20], the
	// paper's scheduler.
	SchedFRFCFS Scheduler = iota
	// SchedFCFS services requests strictly in arrival order.
	SchedFCFS
)

func (s Scheduler) String() string {
	switch s {
	case SchedFRFCFS:
		return "frfcfs"
	case SchedFCFS:
		return "fcfs"
	default:
		return fmt.Sprintf("Scheduler(%d)", int(s))
	}
}

// CoreParams sizes the CPU model. Zero fields take Nehalem-like
// defaults: 128-entry ROB, 16 MSHRs, 4-wide retire, 8 CPU cycles per
// memory-controller cycle (3.2 GHz / 400 MHz).
type CoreParams struct {
	ROB            int
	MSHRs          int
	RetireWidth    int
	CPUPerMemCycle int
}

// EnergyBreakdown reports simulated energy in picojoules.
type EnergyBreakdown struct {
	ReadPJ       float64
	WritePJ      float64
	BackgroundPJ float64
	TotalPJ      float64
	BitsSensed   uint64
	BitsWritten  uint64
}

// Result is the outcome of one simulation run.
type Result struct {
	Design    Design
	Benchmark string
	SAGs, CDs int
	Cores     int

	Instructions uint64   // total retired across all cores
	Cycles       sim.Tick // memory-controller cycles elapsed
	// IPC is the system throughput: the sum of per-core IPCs, each
	// measured at its core's own completion time. For one core this is
	// simply that core's IPC.
	IPC float64
	// MinCoreIPC and MaxCoreIPC bound the per-core fairness spread in
	// multi-programmed runs.
	MinCoreIPC float64
	MaxCoreIPC float64

	Reads, Writes   uint64 // memory requests completed
	Activations     uint64
	SegmentHits     uint64
	BackgroundedRds uint64  // reads completed under an in-flight write
	AvgReadLatency  float64 // controller cycles
	AvgWriteLatency float64
	// Read-latency percentiles in controller cycles (log-bucket upper
	// bounds; see stats.Histogram).
	P50ReadLatency uint64
	P95ReadLatency uint64
	P99ReadLatency uint64
	LLCMissRate    float64
	StallCycles    uint64

	Energy EnergyBreakdown

	// Stalls breaks queued waiting down by blocking cause. Populated
	// only when Options.Telemetry.Attribution was set.
	Stalls *StallBreakdown `json:",omitempty"`
	// TileOccupancy is the [SAG][CD] busy-cycle matrix (summed over
	// banks). Populated only when Options.Telemetry.Occupancy was set.
	TileOccupancy [][]uint64 `json:",omitempty"`
	// TraceEvents is the number of events exported to
	// Options.Telemetry.TraceWriter (0 when tracing was off).
	TraceEvents int `json:",omitempty"`
	// Engine reports parallel-engine observability. Populated only
	// when Options.EngineStats was set and the parallel engine ran.
	Engine *EngineStats `json:",omitempty"`
}

// EngineStats is the parallel-engine observability block
// (Result.Engine): how many lookahead windows the run loop opened,
// their width distribution, how many ran in channel-local delivery
// mode, and how the controller executed them. Window widths are pure
// functions of simulated state — identical runs report identical
// stats regardless of host parallelism.
type EngineStats struct {
	// Windows counts lookahead windows stepped through the controller
	// (single-tick serial cycles and fast-forward jumps are not
	// windows). LocalWindows of them ran in local-delivery mode.
	Windows      uint64
	LocalWindows uint64
	// MeanWidth, P50Width and MaxWidth summarize the window width
	// distribution in ticks (P50 is a log-bucket upper bound; see
	// stats.Histogram).
	MeanWidth float64
	P50Width  uint64
	MaxWidth  uint64
	// Inline/Worker split: windows too narrow (or too few channels) to
	// amortize a worker handoff step inline on the engine goroutine.
	InlineWindows uint64 // reference windows stepped inline
	WorkerWindows uint64 // reference windows fanned out to workers
	LocalInline   uint64 // local windows stepped inline
	LocalWorker   uint64 // local windows fanned out
	// LocalDeliveries counts completions fired shard-side instead of
	// through the engine; BarrierReplays counts window barriers
	// serialized back into engine order.
	LocalDeliveries uint64
	BarrierReplays  uint64
}

// SpeedupOver returns this result's IPC relative to a baseline result.
// A baseline with zero IPC has no meaningful ratio and yields NaN, so a
// broken baseline run cannot masquerade as "no speedup".
func (r Result) SpeedupOver(base Result) float64 {
	if base.IPC == 0 {
		return math.NaN()
	}
	return r.IPC / base.IPC
}

// RelativeEnergy returns this result's total energy relative to a
// baseline result. A baseline with zero total energy (e.g. the
// performance-only DRAM design) has no meaningful ratio and yields NaN.
func (r Result) RelativeEnergy(base Result) float64 {
	if base.Energy.TotalPJ == 0 {
		return math.NaN()
	}
	return r.Energy.TotalPJ / base.Energy.TotalPJ
}

func (o *Options) applyDefaults() {
	if o.SAGs == 0 {
		o.SAGs = 8
	}
	if o.CDs == 0 {
		o.CDs = 2
	}
	if o.Instructions == 0 {
		o.Instructions = 200_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.IssueLanes == 0 {
		if o.Design == DesignFgNVMMultiIssue {
			o.IssueLanes = 4
		} else {
			o.IssueLanes = 1
		}
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 2_000_000_000
	}
}

// resolve derives the concrete geometry and access modes for a design.
func (o *Options) resolve() (addr.Geometry, core.AccessModes, error) {
	g := addr.PaperGeometry()
	if o.Geometry != nil {
		g = *o.Geometry
	}
	switch o.Design {
	case DesignBaseline:
		g.SAGs, g.CDs = 1, 1
		return g, core.AccessModes{}, nil
	case DesignFgNVM, DesignFgNVMMultiIssue:
		g.SAGs, g.CDs = o.SAGs, o.CDs
		if o.Modes != nil {
			return g, core.AccessModes{
				PartialActivation:  o.Modes.PartialActivation,
				MultiActivation:    o.Modes.MultiActivation,
				BackgroundedWrites: o.Modes.BackgroundedWrites,
			}, nil
		}
		return g, core.AllModes(), nil
	case DesignSALP:
		// DRAM-SALP analogue: 1-D subdivision whose subarrays own their
		// sense amplifiers, so concurrent activations need only distinct
		// SAGs. Senses still fetch the full row (no Partial-Activation).
		g.SAGs, g.CDs = o.SAGs, 1
		return g, core.AccessModes{
			MultiActivation: true, BackgroundedWrites: true, LocalSenseAmps: true,
		}, nil
	case DesignManyBanks:
		g.SAGs, g.CDs = o.SAGs, o.CDs
		mg, err := bank.ManyBanksGeometry(g)
		if err != nil {
			return addr.Geometry{}, core.AccessModes{}, err
		}
		return mg, core.AccessModes{}, nil
	case DesignDRAM:
		g.SAGs, g.CDs = 1, 1
		return g, core.AccessModes{}, nil
	default:
		return addr.Geometry{}, core.AccessModes{}, fmt.Errorf("fgnvm: unknown design %d", int(o.Design))
	}
}

// Run executes one simulation to completion and returns its Result.
func Run(o Options) (Result, error) {
	return RunContext(context.Background(), o)
}

// ctxCheckMask throttles the cancellation poll in the main loop: ctx is
// consulted once every 4096 controller cycles (~10 µs simulated), which
// keeps the check off the profile while bounding the response to a
// cancellation at a few microseconds of wall time.
const ctxCheckMask = 1<<12 - 1

// RunContext executes one simulation to completion, honouring ctx:
// cancellation or deadline expiry stops the simulation loop promptly and
// returns ctx's error. A run abandoned by its caller therefore stops
// burning CPU instead of running to its retire budget.
func RunContext(ctx context.Context, o Options) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	o.applyDefaults()
	geom, modes, err := o.resolve()
	if err != nil {
		return Result{}, err
	}
	if err := geom.Validate(); err != nil {
		return Result{}, err
	}

	tim := timing.Paper()
	var derived *device.Derived
	switch {
	case o.Timings != nil && o.Device != nil:
		return Result{}, fmt.Errorf("fgnvm: set either Timings or Device, not both")
	case o.Timings != nil:
		tim = *o.Timings
	case o.Device == nil && o.Technology == TechRRAM:
		var err error
		tim, err = timing.New(timing.RRAM(), timing.DefaultClockMHz)
		if err != nil {
			return Result{}, err
		}
	case o.Device != nil:
		dp := o.Device.applyDefaults()
		d, err := device.Derive(device.Params{
			FeatureNm: dp.FeatureNm, TileRows: dp.TileRows, TileCols: dp.TileCols,
			MuxDegree: dp.MuxDegree, CellAreaF2: dp.CellAreaF2,
		})
		if err != nil {
			return Result{}, err
		}
		derived = &d
		tim, err = timing.New(d.Timings, timing.DefaultClockMHz)
		if err != nil {
			return Result{}, err
		}
	}

	// Workload: one access stream per core. Multi-programmed cores get
	// differently seeded copies in disjoint 512 MiB address regions.
	var streams []trace.Stream
	benchName := o.Benchmark
	sources := 0
	if o.Benchmark != "" || len(o.Mix) > 0 {
		sources++
	}
	if o.Stream != nil {
		sources++
	}
	if len(o.Streams) > 0 {
		sources++
	}
	if o.Workload != nil {
		sources++
	}
	if sources > 1 {
		return Result{}, fmt.Errorf("fgnvm: set exactly one workload source: Benchmark/Mix, Stream, Streams, or Workload")
	}
	switch {
	case o.Stream != nil:
		if o.Cores > 1 {
			return Result{}, fmt.Errorf("fgnvm: custom Stream supports a single core (use Streams for multi-programmed custom workloads)")
		}
		streams = []trace.Stream{o.Stream}
		benchName = "custom"
	case len(o.Streams) > 0:
		if len(o.Streams) > 4 {
			// Same bound as Mix: up to four private cores.
			return Result{}, fmt.Errorf("fgnvm: at most 4 cores, got %d", len(o.Streams))
		}
		if o.Cores > 1 && o.Cores != len(o.Streams) {
			return Result{}, fmt.Errorf("fgnvm: Cores = %d does not match len(Streams) = %d", o.Cores, len(o.Streams))
		}
		for i, s := range o.Streams {
			if s == nil {
				return Result{}, fmt.Errorf("fgnvm: Streams[%d] is nil", i)
			}
		}
		streams = o.Streams
		benchName = "custom"
		if len(o.Streams) > 1 {
			benchName = fmt.Sprintf("%dxcustom", len(o.Streams))
		}
	case o.Workload != nil:
		n := o.Cores
		if n < 1 {
			n = 1
		}
		if n > 4 {
			return Result{}, fmt.Errorf("fgnvm: at most 4 cores, got %d", n)
		}
		spec, err := o.Workload.resolve()
		if err != nil {
			return Result{}, err
		}
		// Lower against the resolved geometry, so tile placement targets
		// the subdivisions (or flattened banks) the design actually has.
		streams, err = gemm.Partition(spec, geom, addr.RowBankRankChanCol, n)
		if err != nil {
			return Result{}, err
		}
		benchName = spec.String()
		if n > 1 {
			benchName = fmt.Sprintf("%dx%s", n, benchName)
		}
	case len(o.Mix) > 0 || o.Benchmark != "":
		names := o.Mix
		if len(names) == 0 {
			n := o.Cores
			if n < 1 {
				n = 1
			}
			for i := 0; i < n; i++ {
				names = append(names, o.Benchmark)
			}
		}
		if len(names) > 4 {
			// Disjoint 512 MiB regions must fit the 2 GiB capacity.
			return Result{}, fmt.Errorf("fgnvm: at most 4 cores, got %d", len(names))
		}
		for i, name := range names {
			p, ok := trace.ProfileByName(name)
			if !ok {
				return Result{}, fmt.Errorf("fgnvm: unknown benchmark %q", name)
			}
			var s trace.Stream = trace.NewGenerator(p, geom.LineBytes, geom.RowBytes(),
				o.Seed+uint64(i)*0x9e3779b9)
			if i > 0 {
				s = trace.NewOffset(s, uint64(i)<<29) // 512 MiB apart
			}
			streams = append(streams, s)
		}
		if len(o.Mix) > 0 {
			benchName = strings.Join(o.Mix, "+")
		} else if len(names) > 1 {
			benchName = fmt.Sprintf("%dx%s", len(names), o.Benchmark)
		}
	default:
		return Result{}, fmt.Errorf("fgnvm: no workload: set Benchmark, Stream, Streams, or Workload")
	}

	// Energy model: background power covers every bank's row buffer and
	// periphery. The many-banks design has more, smaller row buffers
	// totalling the same bits, so background power is design-invariant.
	ecfg := energy.Config{
		RowBufferBits: geom.RowBytes() * 8,
		Banks:         geom.Channels * geom.Ranks * geom.Banks,
	}
	if derived != nil {
		ecfg.ReadPJPerBit = derived.ReadPJPerBit
		ecfg.WritePJPerBit = derived.WritePJPerBit
	} else if o.Technology == TechRRAM {
		ecfg.WritePJPerBit = rramWritePJPerBit
	}
	emod := energy.New(ecfg)

	var sched controller.SchedulerKind
	switch o.Scheduler {
	case SchedFRFCFS:
		sched = controller.FRFCFS
	case SchedFCFS:
		sched = controller.FCFS
	default:
		return Result{}, fmt.Errorf("fgnvm: unknown scheduler %d", int(o.Scheduler))
	}

	// The memory side: the NVM controller for every design except
	// DesignDRAM, which runs the DDR reference system instead.
	eng := sim.NewEngine()
	var memsys memDevice
	var ctrl *controller.Controller
	var dsys *dram.System
	var telAtt *telemetry.Attribution
	var telOcc *telemetry.Occupancy
	var telTrc *telemetry.Trace
	if o.Design == DesignDRAM {
		dsys, err = dram.New(dram.Config{
			Geom: geom, Tim: dram.Defaults(),
			Interleave: addr.RowBankRankChanCol,
		}, eng)
		if err != nil {
			return Result{}, err
		}
		memsys = dsys
	} else {
		// Telemetry consumers attach before the controller is built so
		// every bank is born with its sink. DesignDRAM skips this branch
		// entirely, so Telemetry is a documented no-op there.
		var sink telemetry.Sink
		if o.Telemetry != nil {
			var fan telemetry.Fanout
			if o.Telemetry.Attribution {
				telAtt = telemetry.NewAttribution(geom)
				fan = append(fan, telAtt)
			}
			if o.Telemetry.Occupancy {
				telOcc = telemetry.NewOccupancy(geom)
				fan = append(fan, telOcc)
			}
			if o.Telemetry.TraceWriter != nil {
				telTrc = telemetry.NewTrace(geom, o.IssueLanes)
				fan = append(fan, telTrc)
				eng.SetHook(telTrc.EngineSample)
			}
			if o.Telemetry.Sink != nil {
				fan = append(fan, o.Telemetry.Sink)
			}
			sink = fan.Compact()
		}
		ccfg := controller.Config{
			Geom: geom, Tim: tim, Modes: modes,
			Scheduler: sched, IssueLanes: o.IssueLanes,
			Interleave:   addr.RowBankRankChanCol,
			Energy:       emod,
			Telemetry:    sink,
			DisableIndex: o.DisableSchedIndex,
		}
		if telTrc != nil {
			// Mirror the engine hook into the controller so local-window
			// barriers can emulate the engine-sample calls the stolen
			// completions would have made (see Controller.replayLocal).
			ccfg.EngineHook = telTrc.EngineSample
		}
		ctrl, err = controller.New(ccfg, eng)
		if err != nil {
			return Result{}, err
		}
		memsys = ctrl
	}

	// Per-core private LLC and core model.
	slots := make([]*coreSlot, len(streams))
	for i, stream := range streams {
		var llc *cpu.LLC
		if !o.SkipLLC {
			llc, err = cpu.NewLLC(cpu.LLCConfig{})
			if err != nil {
				return Result{}, err
			}
			// Warm the cache on the head of the same stream so the
			// timed region runs in steady state (capacity misses and
			// writebacks) — the stand-in for a checkpoint restore.
			warm := o.WarmupAccesses
			if warm == 0 {
				warm = 2 * (2 << 20) / 64
			}
			for j := 0; j < warm; j++ {
				a, ok := stream.Next()
				if !ok {
					break
				}
				llc.Access(a.Addr, a.Write)
			}
		}
		cc := cpu.CoreConfig{
			ROB:            o.Core.ROB,
			MSHRs:          o.Core.MSHRs,
			RetireWidth:    o.Core.RetireWidth,
			CPUPerMemCycle: o.Core.CPUPerMemCycle,
			Instructions:   o.Instructions,
		}
		cm, err := cpu.NewCore(cc, stream, llc, memsys)
		if err != nil {
			return Result{}, err
		}
		slots[i] = &coreSlot{core: cm, llc: llc}
	}

	// Arm the affinity classifiers for channel-local event delivery —
	// before the first enqueue, so the per-channel in-flight counts see
	// every request. Skipped (leaving every affinity probe on its
	// refuse path, i.e. reference windows only) when local delivery is
	// disabled or its per-run preconditions fail; see
	// localDeliveryViable.
	if ctrl != nil && !o.DisableParallelEngine && !o.DisableLocalDelivery &&
		localDeliveryViable(ctrl, slots, streams) {
		for _, s := range slots {
			s.core.SetClassifier(ctrl.ChannelOfAddr, geom.Channels)
		}
	}

	// Main loop: the serial reference engine, or — for the NVM designs,
	// unless DisableParallelEngine — the windowed parallel engine.
	// Both return the final tick; byte-identity between them is pinned
	// by the parallel_test.go differential battery.
	var now sim.Tick
	var eacc *engineAccum
	if ctrl != nil && !o.DisableParallelEngine {
		eacc = &engineAccum{}
		now, err = runParallel(ctx, o, eng, ctrl, slots, eacc)
	} else {
		now, err = runSerial(ctx, o, eng, memsys, slots)
	}
	if err != nil {
		return Result{}, err
	}
	if now >= o.MaxCycles {
		return Result{}, fmt.Errorf("fgnvm: run exceeded MaxCycles=%d (core 0 retired %d of %d)",
			o.MaxCycles, slots[0].core.Retired(), o.Instructions)
	}
	emod.AdvanceBackground(now)

	// Per-core IPC at each core's own completion time; Result.IPC is
	// the system throughput (sum), which equals the single core's IPC
	// in the single-core case.
	var sumIPC, minIPC, maxIPC float64
	var retired, stalls uint64
	for i, s := range slots {
		ipc := s.core.IPC(s.finished + 1)
		sumIPC += ipc
		if i == 0 || ipc < minIPC {
			minIPC = ipc
		}
		if ipc > maxIPC {
			maxIPC = ipc
		}
		retired += s.core.Retired()
		stalls += s.core.StallCycles()
	}

	res := Result{
		Design:       o.Design,
		Benchmark:    benchName,
		SAGs:         geom.SAGs,
		CDs:          geom.CDs,
		Cores:        len(slots),
		Instructions: retired,
		Cycles:       now + 1,
		IPC:          sumIPC,
		MinCoreIPC:   minIPC,
		MaxCoreIPC:   maxIPC,

		StallCycles: stalls,
	}
	if ctrl != nil {
		st := ctrl.Stats()
		res.Reads = st.Reads.Value()
		res.Writes = st.Writes.Value()
		res.Activations = st.Activations.Value()
		res.SegmentHits = st.SegmentHits.Value()
		res.BackgroundedRds = st.BackgroundedRds.Value()
		res.AvgReadLatency = st.ReadLatency.Mean()
		res.AvgWriteLatency = st.WriteLatency.Mean()
		res.P50ReadLatency = st.ReadLatencyHist.Percentile(50)
		res.P95ReadLatency = st.ReadLatencyHist.Percentile(95)
		res.P99ReadLatency = st.ReadLatencyHist.Percentile(99)
		res.Energy = EnergyBreakdown{
			ReadPJ:       emod.ReadPJ(),
			WritePJ:      emod.WritePJ(),
			BackgroundPJ: emod.BackgroundPJ(),
			TotalPJ:      emod.TotalPJ(),
			BitsSensed:   emod.BitsSensed(),
			BitsWritten:  emod.BitsWritten(),
		}
		if telAtt != nil {
			res.Stalls = stallBreakdownFrom(telAtt.Causes(), st.QueuedWaitCycles.Value())
		}
		if telOcc != nil {
			res.TileOccupancy = telOcc.Matrix()
		}
		if telTrc != nil {
			res.TraceEvents = telTrc.Events()
			if err := telTrc.Export(o.Telemetry.TraceWriter); err != nil {
				return Result{}, fmt.Errorf("fgnvm: writing trace: %w", err)
			}
		}
		if o.EngineStats && eacc != nil {
			ec := ctrl.EngineCounters()
			res.Engine = &EngineStats{
				Windows:         eacc.windows,
				LocalWindows:    eacc.localWindows,
				MeanWidth:       eacc.width.Mean(),
				P50Width:        eacc.width.Percentile(50),
				MaxWidth:        eacc.width.Max(),
				InlineWindows:   ec.InlineWindows,
				WorkerWindows:   ec.WorkerWindows,
				LocalInline:     ec.LocalInline,
				LocalWorker:     ec.LocalWorker,
				LocalDeliveries: ec.LocalDeliveries,
				BarrierReplays:  ec.BarrierReplays,
			}
		}
	} else {
		st := dsys.Stats()
		res.Reads = st.Reads.Value()
		res.Writes = st.Writes.Value()
		res.Activations = st.Activations.Value()
		res.SegmentHits = st.RowHits.Value()
		res.AvgReadLatency = st.ReadLatency.Mean()
		res.AvgWriteLatency = st.WriteLatency.Mean()
		// DRAM energy is deliberately not modeled: the comparison with
		// the NVM designs is performance-only.
	}
	if !o.SkipLLC {
		// Average miss rate across the private LLCs.
		var sum float64
		for _, s := range slots {
			sum += s.llc.MissRate()
		}
		res.LLCMissRate = sum / float64(len(slots))
	}
	return res, nil
}

// memDevice is the run loops' view of the memory side. Beyond accepting
// and cycling requests, a device must support the fast-forward
// protocol: report how much it issued (Cycle's return), bound when it
// could next act (NextWork), and batch-credit skipped quiescent cycles
// (SkipCycles/SkipRejects).
type memDevice interface {
	cpu.MemorySystem
	Cycle(now sim.Tick) int
	Drained() bool
	NextWork(now sim.Tick) sim.Tick
	SkipCycles(now sim.Tick, n uint64)
	SkipRejects(r *mem.Request, now sim.Tick, n uint64)
}

// coreSlot tracks one core, its private LLC and its completion tick.
type coreSlot struct {
	core     *cpu.Core
	llc      *cpu.LLC
	finished sim.Tick
	done     bool
}

// runSerial is the reference engine: one goroutine, one controller
// cycle at a time; completions scheduled on the engine fire before the
// cycle's scheduling work. Finished cores stop fetching; the run ends
// when the last core retires its budget and memory drains. It returns
// the final tick; the caller treats now >= MaxCycles as the deadlock
// backstop.
//
// Idle-cycle fast-forward: when a cycle issued no memory command and
// every live core is provably Blocked, nothing can happen until the
// earliest of the next scheduled event and the memory system's next
// flip tick (NextWork) — every scheduling predicate is constant in
// between, so the intervening cycles would each repeat exactly the
// same no-op with the same counter increments. The loop jumps
// straight to that tick, batch-crediting the per-cycle accounting
// (core stall cycles, queued-wait and bus-stall counters, weighted
// stall-attribution events, rejected-retry telemetry), which keeps
// fast-forwarded runs byte-identical to cycle-by-cycle runs — the
// property the differential tests pin. The paper's long PCM write
// windows (Section 4.3) are precisely where this pays off.
// Probe throttle: quiescence probes (Blocked + NextWork) are not
// free, and on read-bound phases they mostly fail — a core is still
// making progress, or the next bank-timer flip is a cycle away. After
// a failed probe the loop backs off exponentially (capped) before
// probing again; any successful jump resets the backoff, so chains of
// short skips inside a write drain stay cheap. Purely a heuristic
// gate — skipped probes execute cycles normally, so exactness and
// determinism are unaffected.
func runSerial(ctx context.Context, o Options, eng *sim.Engine, memsys memDevice, slots []*coreSlot) (sim.Tick, error) {
	var probeRetry sim.Tick
	var probeBackoff sim.Tick
	var now sim.Tick
	for ; now < o.MaxCycles; now++ {
		if now&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		eng.RunUntil(now)
		allDone := true
		for _, s := range slots {
			if s.done {
				continue
			}
			s.core.Cycle(now)
			if s.core.Finished() {
				s.done = true
				s.finished = now
			} else {
				allDone = false
			}
		}
		issued := memsys.Cycle(now)
		if allDone && memsys.Drained() {
			break
		}
		if o.DisableFastForward || issued != 0 {
			continue
		}
		// Cheapest test first: with a completion due next tick (the
		// common case while requests are in service) no jump is
		// possible, and the costlier quiescence probes are skipped.
		target := eng.NextEventTick()
		if target <= now+1 || now < probeRetry {
			continue
		}
		quiescent := true
		for _, s := range slots {
			if !s.done && !s.core.Blocked() {
				quiescent = false
				break
			}
		}
		if !quiescent {
			probeBackoff = min(probeBackoff*2+1, 64)
			probeRetry = now + probeBackoff
			continue
		}
		if w := memsys.NextWork(now); w < target {
			target = w
		}
		if target > o.MaxCycles {
			// Nothing is ever going to happen (deadlock backstop) or the
			// next action lies past the cycle budget either way: land on
			// MaxCycles so the loop exits through its normal error path.
			target = o.MaxCycles
		}
		if target <= now+1 {
			probeBackoff = min(probeBackoff*2+1, 64)
			probeRetry = now + probeBackoff
			continue // nothing to skip
		}
		skip := uint64(target - now - 1)
		probeBackoff = 0
		for _, s := range slots {
			if s.done {
				continue
			}
			s.core.SkipStallCycles(skip)
			if r := s.core.RetryRequest(); r != nil {
				memsys.SkipRejects(r, now, skip)
			}
		}
		memsys.SkipCycles(now, skip)
		now = target - 1 // the loop increment lands exactly on target
		// The masked cancellation poll above can be starved by large
		// jumps (now skips most mask-aligned ticks), so re-check after
		// every jump: a cancelled run must stop even when it is
		// fast-forwarding through a multi-thousand-cycle write drain.
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	return now, nil
}

// Benchmarks returns the names of the built-in workload profiles in
// presentation order.
func Benchmarks() []string {
	ps := trace.Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}
