package fgnvm

import (
	"bytes"
	"encoding/json"
	"testing"
)

// runGEMM runs one GEMM workload with full telemetry and returns the
// marshaled Result plus the Perfetto trace bytes. SkipLLC models the
// lowered stream as post-cache traffic of a streaming GEMM engine —
// with the LLC in the path the output-tile reuse is absorbed and the
// placement never reaches memory.
func runGEMM(t *testing.T, w WorkloadSpec, design Design, instr uint64) (Result, []byte, []byte) {
	t.Helper()
	var trace bytes.Buffer
	r, err := Run(Options{
		Design: design, SAGs: 8, CDs: 2,
		Instructions: instr, SkipLLC: true,
		Workload:  &w,
		Telemetry: &TelemetryOptions{Attribution: true, Occupancy: true, TraceWriter: &trace},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return r, b, trace.Bytes()
}

// TestGEMMRunsAreByteDeterministic: for every preset, two runs with
// identical Options produce byte-identical Result JSON and
// byte-identical Perfetto traces. The lowering has no entropy source —
// the stream is a pure function of (Spec, Geometry, Interleave) — so
// any divergence here is a regression in the lowering or the
// telemetry serialization.
func TestGEMMRunsAreByteDeterministic(t *testing.T) {
	for _, name := range WorkloadPresets() {
		name := name
		t.Run(name, func(t *testing.T) {
			w := WorkloadSpec{Preset: name}
			_, json1, trace1 := runGEMM(t, w, DesignFgNVM, 8000)
			_, json2, trace2 := runGEMM(t, w, DesignFgNVM, 8000)
			if !bytes.Equal(json1, json2) {
				t.Errorf("%s: Result JSON differs across identical runs", name)
			}
			if !bytes.Equal(trace1, trace2) {
				t.Errorf("%s: Perfetto trace differs across identical runs", name)
			}
			if len(trace1) == 0 {
				t.Errorf("%s: empty Perfetto trace", name)
			}
		})
	}
}

// TestSAGTilingReducesSAGConflicts pins the paper's core claim as it
// applies to the lowering: on an FgNVM part, placing each matrix's
// blocks in its own SAG partition eliminates the subarray-group
// conflicts that row-major placement suffers when the interleaved
// A/B/C streams land in the same SAG.
func TestSAGTilingReducesSAGConflicts(t *testing.T) {
	run := func(tiling string) Result {
		r, _, _ := runGEMM(t, WorkloadSpec{Preset: "gpt2s-ffn-down", Tiling: tiling}, DesignFgNVM, 60_000)
		if r.Stalls == nil {
			t.Fatal("Attribution requested but Result.Stalls is nil")
		}
		return r
	}
	rowmajor := run("rowmajor")
	sag := run("sag")
	if sag.Stalls.SAGConflict >= rowmajor.Stalls.SAGConflict {
		t.Errorf("sag tiling SAGConflict = %d, want < rowmajor's %d",
			sag.Stalls.SAGConflict, rowmajor.Stalls.SAGConflict)
	}
	if rowmajor.Stalls.SAGConflict == 0 {
		t.Error("rowmajor tiling shows zero SAG conflicts; the workload no longer exercises the contention the test is about")
	}
}

// TestCDTilingShiftsStallBuckets: the orthogonal half of the story —
// CD-interleaved tiling drains the cd_conflict bucket that SAG-aligned
// tiling pays, so the two strategies trade stall buckets rather than
// one dominating everywhere.
func TestCDTilingShiftsStallBuckets(t *testing.T) {
	run := func(tiling string) Result {
		r, _, _ := runGEMM(t, WorkloadSpec{Preset: "gpt2s-ffn-down", Tiling: tiling}, DesignFgNVM, 60_000)
		if r.Stalls == nil {
			t.Fatal("Attribution requested but Result.Stalls is nil")
		}
		return r
	}
	sag := run("sag")
	cd := run("cd")
	if cd.Stalls.CDConflict >= sag.Stalls.CDConflict {
		t.Errorf("cd tiling CDConflict = %d, want < sag tiling's %d",
			cd.Stalls.CDConflict, sag.Stalls.CDConflict)
	}
}

// TestGEMMBaselineSuffersMost: the undivided baseline bank serializes
// everything behind a single row buffer, so its SAG-conflict bucket
// (row-buffer conflicts, in baseline terms) dwarfs FgNVM's under the
// same SAG-aligned workload, and FgNVM's IPC is at least as good.
func TestGEMMBaselineSuffersMost(t *testing.T) {
	w := WorkloadSpec{Preset: "gpt2s-ffn-down"}
	base, _, _ := runGEMM(t, w, DesignBaseline, 60_000)
	fg, _, _ := runGEMM(t, w, DesignFgNVM, 60_000)
	if base.Stalls.SAGConflict <= fg.Stalls.SAGConflict {
		t.Errorf("baseline SAGConflict = %d, want > fgnvm's %d",
			base.Stalls.SAGConflict, fg.Stalls.SAGConflict)
	}
	if fg.IPC <= base.IPC {
		t.Errorf("fgnvm IPC = %.4f, want > baseline's %.4f", fg.IPC, base.IPC)
	}
}
