// Differential tests for the indexed scheduling hot path.
//
// The controller's ready-memo and tile candidate index (controller.go)
// claim to be exact: skipping provably-idle channel scans and answering
// clobber queries from incremental counts must leave every observable
// output byte-identical to the reference queue-scanning scheduler.
// These tests pin that claim across the full benchmark × design matrix
// with full telemetry attached, mirroring the fast-forward differential
// suite — and compose the two optimizations, since the ready memo must
// stay exact across fast-forward jumps.

package fgnvm

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/trace"
)

// TestSchedIndexDifferential: every benchmark × every design, indexed
// scheduling vs the reference scan path, must produce byte-identical
// Result JSON (stall buckets, occupancy, energy, latency percentiles —
// everything) and byte-identical trace output. Fast-forward stays on
// in both runs, so this also covers memo-across-jump interactions.
func TestSchedIndexDifferential(t *testing.T) {
	for _, d := range Designs() {
		t.Run(d.String(), func(t *testing.T) {
			for _, bench := range Benchmarks() {
				t.Run(bench, func(t *testing.T) {
					t.Parallel()
					o := Options{Design: d, SAGs: 8, CDs: 2, Benchmark: bench, Instructions: ffInstr}
					idxRes, idxTrace := runArtifacts(t, o)
					o.DisableSchedIndex = true
					refRes, refTrace := runArtifacts(t, o)
					if !bytes.Equal(idxRes, refRes) {
						t.Errorf("Result diverged under indexed scheduling:\n  idx: %s\n  ref: %s", idxRes, refRes)
					}
					if !bytes.Equal(idxTrace, refTrace) {
						t.Errorf("trace diverged under indexed scheduling (%d vs %d bytes)", len(idxTrace), len(refTrace))
					}
				})
			}
		})
	}
}

// TestSchedIndexCycleByCycle re-runs the differential with fast-forward
// disabled on a design/benchmark slice, so an indexed-scheduling bug
// masked by the fast-forward's own idle-window skipping (both paths
// skip idle cycles, by different mechanisms) cannot hide.
func TestSchedIndexCycleByCycle(t *testing.T) {
	for _, d := range []Design{DesignBaseline, DesignFgNVM, DesignFgNVMMultiIssue, DesignDRAM} {
		t.Run(d.String(), func(t *testing.T) {
			for _, bench := range []string{"lbm", "mcf"} {
				t.Run(bench, func(t *testing.T) {
					t.Parallel()
					o := Options{
						Design: d, SAGs: 8, CDs: 2, Benchmark: bench,
						Instructions: ffInstr, DisableFastForward: true,
					}
					idxRes, idxTrace := runArtifacts(t, o)
					o.DisableSchedIndex = true
					refRes, refTrace := runArtifacts(t, o)
					if !bytes.Equal(idxRes, refRes) {
						t.Errorf("Result diverged (cycle-by-cycle):\n  idx: %s\n  ref: %s", idxRes, refRes)
					}
					if !bytes.Equal(idxTrace, refTrace) {
						t.Errorf("trace diverged (cycle-by-cycle): %d vs %d bytes", len(idxTrace), len(refTrace))
					}
				})
			}
		})
	}
}

// TestSchedIndexRandomStream drives the differential with an
// independently seeded SplitMix64 access stream, so index exactness
// does not silently depend on the benchmark profiles' locality
// structure (the same guard the fast-forward suite applies).
func TestSchedIndexRandomStream(t *testing.T) {
	mk := func() trace.Stream {
		state := uint64(0xabcde)
		next := func() uint64 {
			state += 0x9e3779b97f4a7c15
			z := state
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			return z ^ (z >> 31)
		}
		accs := make([]trace.Access, 4096)
		for i := range accs {
			accs[i] = trace.Access{
				Gap:   uint32(next() % 200),
				Addr:  (next() % (64 << 20)) &^ 63,
				Write: next()%100 < 40,
			}
		}
		return trace.NewSliceStream(accs)
	}
	for _, d := range []Design{DesignBaseline, DesignFgNVM, DesignFgNVMMultiIssue} {
		run := func(disable bool) Result {
			r, err := Run(Options{
				Design: d, SAGs: 8, CDs: 2, Stream: mk(),
				Instructions: ffInstr, DisableSchedIndex: disable,
			})
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		idx, ref := run(false), run(true)
		idxJSON, _ := json.Marshal(idx)
		refJSON, _ := json.Marshal(ref)
		if !bytes.Equal(idxJSON, refJSON) {
			t.Errorf("%v: random-stream run diverged under indexed scheduling:\n  idx: %s\n  ref: %s", d, idxJSON, refJSON)
		}
	}
}
