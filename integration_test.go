package fgnvm

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandLineTools builds every binary in cmd/ and exercises its
// main paths end-to-end. Gated behind -short because it shells out to
// the Go toolchain.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: skipped in -short mode")
	}
	bindir := t.TempDir()
	build := exec.Command("go", "build", "-o", bindir, "./cmd/...")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/...: %v\n%s", err, out)
	}
	bin := func(name string) string { return filepath.Join(bindir, name) }
	runTool := func(name string, args ...string) string {
		t.Helper()
		out, err := exec.Command(bin(name), args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}
	expectFail := func(name string, args ...string) {
		t.Helper()
		if out, err := exec.Command(bin(name), args...).CombinedOutput(); err == nil {
			t.Fatalf("%s %v should have failed:\n%s", name, args, out)
		}
	}

	t.Run("fgnvm-sim", func(t *testing.T) {
		out := runTool("fgnvm-sim", "-design", "fgnvm", "-bench", "milc", "-n", "20000")
		for _, want := range []string{"IPC", "activations", "energy"} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
		out = runTool("fgnvm-sim", "-json", "-bench", "milc", "-n", "20000")
		if !strings.Contains(out, "\"IPC\"") {
			t.Errorf("JSON output malformed:\n%s", out)
		}
		out = runTool("fgnvm-sim", "-print-config")
		if !strings.Contains(out, "tRCD=10") {
			t.Errorf("print-config missing timings:\n%s", out)
		}
		out = runTool("fgnvm-sim", "-list")
		if !strings.Contains(out, "mcf") {
			t.Errorf("list missing mcf:\n%s", out)
		}
		expectFail("fgnvm-sim", "-design", "warp-drive")
		expectFail("fgnvm-sim", "-scheduler", "lifo")
		expectFail("fgnvm-sim", "-tech", "core-memory")
	})

	t.Run("fgnvm-sim-config-file", func(t *testing.T) {
		cfg := filepath.Join(t.TempDir(), "run.cfg")
		if err := os.WriteFile(cfg, []byte("design = baseline\nbench = milc\ninstructions = 20000\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		out := runTool("fgnvm-sim", "-config", cfg)
		if !strings.Contains(out, "baseline") {
			t.Errorf("config file not honoured:\n%s", out)
		}
		bad := filepath.Join(t.TempDir(), "bad.cfg")
		if err := os.WriteFile(bad, []byte("desine = typo\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		expectFail("fgnvm-sim", "-config", bad)
	})

	t.Run("fgnvm-bench", func(t *testing.T) {
		out := runTool("fgnvm-bench", "-table", "1")
		if !strings.Contains(out, "Row Latches") || !strings.Contains(out, "2325") {
			t.Errorf("table 1 malformed:\n%s", out)
		}
		out = runTool("fgnvm-bench", "-fig", "4", "-benchmarks", "milc", "-n", "15000", "-csv")
		if !strings.Contains(out, "milc") || !strings.Contains(out, "gmean") {
			t.Errorf("figure 4 CSV malformed:\n%s", out)
		}
		out = runTool("fgnvm-bench", "-reliability")
		if !strings.Contains(out, "grouped") {
			t.Errorf("reliability output malformed:\n%s", out)
		}
		expectFail("fgnvm-bench") // nothing selected
	})

	t.Run("fgnvm-area", func(t *testing.T) {
		out := runTool("fgnvm-area")
		if !strings.Contains(out, "8x8") || !strings.Contains(out, "32x32") {
			t.Errorf("area output malformed:\n%s", out)
		}
		out = runTool("fgnvm-area", "-sags", "16", "-cds", "4")
		if !strings.Contains(out, "16x4") {
			t.Errorf("custom point malformed:\n%s", out)
		}
		out = runTool("fgnvm-area", "-sweep")
		if strings.Count(out, "\n") < 30 {
			t.Errorf("sweep too short:\n%s", out)
		}
	})

	t.Run("fgnvm-trace", func(t *testing.T) {
		trc := filepath.Join(t.TempDir(), "x.trc")
		runTool("fgnvm-trace", "-bench", "lbm", "-n", "500", "-o", trc)
		out := runTool("fgnvm-trace", "-inspect", trc)
		if !strings.Contains(out, "APKI") {
			t.Errorf("inspect malformed:\n%s", out)
		}
		expectFail("fgnvm-trace", "-bench", "not-a-benchmark")
		expectFail("fgnvm-trace", "-inspect", "/does/not/exist")
	})

	t.Run("fgnvm-figure3", func(t *testing.T) {
		out := runTool("fgnvm-figure3")
		for _, want := range []string{"Partial-Activation", "Multi-Activation", "Backgrounded Write", "SAG0", "#", "~"} {
			if !strings.Contains(out, want) {
				t.Errorf("figure 3 output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("fgnvm-sweep", func(t *testing.T) {
		out := runTool("fgnvm-sweep", "-axis", "cds", "-values", "1,4", "-n", "15000")
		if !strings.Contains(out, "value,ipc,speedup") || strings.Count(out, "\n") != 4 {
			t.Errorf("sweep CSV malformed:\n%s", out)
		}
		expectFail("fgnvm-sweep", "-axis", "flux-capacitors")
		expectFail("fgnvm-sweep", "-axis", "cds", "-values", "1,banana")
	})
}

// TestNVMainFormatCLI round-trips the NVMain trace format through the
// command-line tool.
func TestNVMainFormatCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: skipped in -short mode")
	}
	bindir := t.TempDir()
	build := exec.Command("go", "build", "-o", bindir, "./cmd/fgnvm-trace")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	tool := filepath.Join(bindir, "fgnvm-trace")
	trc := filepath.Join(t.TempDir(), "x.nvt")
	if out, err := exec.Command(tool, "-format", "nvmain", "-bench", "milc", "-n", "200", "-o", trc).CombinedOutput(); err != nil {
		t.Fatalf("generate: %v\n%s", err, out)
	}
	out, err := exec.Command(tool, "-format", "nvmain", "-inspect", trc).CombinedOutput()
	if err != nil {
		t.Fatalf("inspect: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "200 accesses") {
		t.Fatalf("inspect output:\n%s", out)
	}
	if out, err := exec.Command(tool, "-format", "punch-cards").CombinedOutput(); err == nil {
		t.Fatalf("bad format accepted:\n%s", out)
	}
}
