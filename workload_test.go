package fgnvm

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// short returns small-budget options for validation-path tests.
func shortOpts() Options {
	return Options{Design: DesignFgNVM, Instructions: 2000}
}

func TestWorkloadSourceExclusivity(t *testing.T) {
	stream := trace.NewSliceStream([]trace.Access{{Addr: 64}})
	w := &WorkloadSpec{Preset: "gpt2s-attn-qkv"}
	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"benchmark+stream", func(o *Options) { o.Benchmark = "mcf"; o.Stream = stream }},
		{"benchmark+workload", func(o *Options) { o.Benchmark = "mcf"; o.Workload = w }},
		{"stream+streams", func(o *Options) { o.Stream = stream; o.Streams = []trace.Stream{stream} }},
		{"streams+workload", func(o *Options) { o.Streams = []trace.Stream{stream}; o.Workload = w }},
		{"mix+workload", func(o *Options) { o.Mix = []string{"mcf"}; o.Workload = w }},
	}
	for _, tc := range cases {
		o := shortOpts()
		tc.mutate(&o)
		_, err := Run(o)
		if err == nil || !strings.Contains(err.Error(), "exactly one workload source") {
			t.Errorf("%s: err = %v, want exactly-one-of error", tc.name, err)
		}
	}

	o := shortOpts()
	if _, err := Run(o); err == nil || !strings.Contains(err.Error(), "no workload") {
		t.Errorf("no source: err = %v, want no-workload error", err)
	}
}

func TestStreamSingleCoreRestriction(t *testing.T) {
	o := shortOpts()
	o.Stream = trace.NewSliceStream([]trace.Access{{Addr: 64}})
	o.Cores = 2
	_, err := Run(o)
	if err == nil || !strings.Contains(err.Error(), "single core") {
		t.Errorf("Stream with Cores=2: err = %v, want single-core error", err)
	}
}

func TestStreamsMultiProgrammed(t *testing.T) {
	mk := func(base uint64) trace.Stream {
		accs := make([]trace.Access, 256)
		for i := range accs {
			accs[i] = trace.Access{Gap: 2, Addr: base + uint64(i)*64}
		}
		return trace.NewSliceStream(accs)
	}
	o := shortOpts()
	o.SkipLLC = true
	o.Streams = []trace.Stream{mk(0), mk(1 << 29)}
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cores != 2 {
		t.Errorf("Cores = %d, want 2", r.Cores)
	}
	if r.Benchmark != "2xcustom" {
		t.Errorf("Benchmark = %q, want 2xcustom", r.Benchmark)
	}

	// A single entry is plain "custom", matching Stream's label.
	o = shortOpts()
	o.SkipLLC = true
	o.Streams = []trace.Stream{mk(0)}
	r, err = Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Benchmark != "custom" || r.Cores != 1 {
		t.Errorf("single stream: benchmark %q cores %d", r.Benchmark, r.Cores)
	}
}

func TestStreamsErrors(t *testing.T) {
	mk := func() trace.Stream { return trace.NewSliceStream([]trace.Access{{Addr: 64}}) }

	o := shortOpts()
	o.Streams = []trace.Stream{mk(), mk()}
	o.Cores = 3
	if _, err := Run(o); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Errorf("cores/len mismatch: err = %v", err)
	}

	o = shortOpts()
	o.Streams = []trace.Stream{mk(), mk(), mk(), mk(), mk()}
	if _, err := Run(o); err == nil || !strings.Contains(err.Error(), "at most 4 cores") {
		t.Errorf("5 streams: err = %v", err)
	}

	o = shortOpts()
	o.Streams = []trace.Stream{mk(), nil}
	if _, err := Run(o); err == nil || !strings.Contains(err.Error(), "is nil") {
		t.Errorf("nil stream: err = %v", err)
	}
}

func TestWorkloadSpecResolveErrors(t *testing.T) {
	cases := []struct {
		name string
		w    WorkloadSpec
		want string
	}{
		{"preset and shape", WorkloadSpec{Preset: "gpt2s-attn-qkv", M: 8, K: 8, N: 8}, "not both"},
		{"unknown preset", WorkloadSpec{Preset: "nope"}, "unknown workload preset"},
		{"no shape", WorkloadSpec{}, "positive M, K, N"},
		{"bad tiling", WorkloadSpec{M: 8, K: 8, N: 8, Tiling: "zigzag"}, "unknown tiling"},
		{"bad word", WorkloadSpec{M: 8, K: 8, N: 8, WordBytes: 3}, "word size"},
	}
	for _, tc := range cases {
		if _, err := tc.w.Canonical(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestWorkloadCanonicalSharesDefaults(t *testing.T) {
	a, err := WorkloadSpec{Preset: "gpt2s-attn-qkv"}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := WorkloadSpec{Preset: "gpt2s-attn-qkv", Tiling: "sag", Gap: 4}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("canonical forms differ:\n  %+v\n  %+v", a, b)
	}
	if a.Tiling != "sag" || a.Gap == 0 || a.TileM == 0 {
		t.Errorf("canonical did not fill defaults: %+v", a)
	}
	if a.M != 0 || a.K != 0 {
		t.Errorf("canonical preset form must keep shape fields zero: %+v", a)
	}
}

func TestWorkloadRunSingleAndMultiCore(t *testing.T) {
	o := Options{
		Design: DesignFgNVM, Instructions: 5000, SkipLLC: true,
		Workload: &WorkloadSpec{Preset: "gpt2s-attn-qkv"},
	}
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Benchmark != "gpt2s-attn-qkv/sag" {
		t.Errorf("Benchmark = %q, want gpt2s-attn-qkv/sag", r.Benchmark)
	}

	o.Cores = 4
	r, err = Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cores != 4 || r.Benchmark != "4xgpt2s-attn-qkv/sag" {
		t.Errorf("multi-core: cores %d benchmark %q", r.Cores, r.Benchmark)
	}

	o.Cores = 5
	if _, err := Run(o); err == nil || !strings.Contains(err.Error(), "at most 4 cores") {
		t.Errorf("5 cores: err = %v", err)
	}
}

// TestWorkloadThroughLLC: the default cache-filtered path also runs.
func TestWorkloadThroughLLC(t *testing.T) {
	r, err := Run(Options{
		Design: DesignFgNVM, Instructions: 5000,
		Workload: &WorkloadSpec{M: 64, K: 64, N: 64, Accumulate: true, Tiling: "rowmajor"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Benchmark != "gemm-64x64x64w2/rowmajor" {
		t.Errorf("Benchmark = %q", r.Benchmark)
	}
}

func TestSweepTilingAxis(t *testing.T) {
	res, err := Sweep(SweepParams{
		Axis:         "tiling",
		Values:       []int{0, 1},
		Design:       DesignFgNVM,
		Workload:     &WorkloadSpec{Preset: "gpt2s-attn-score"},
		SkipLLC:      true,
		Instructions: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	if res.Benchmark != "gpt2s-attn-score" {
		t.Errorf("Benchmark label = %q", res.Benchmark)
	}
	for _, p := range res.Points {
		if p.IPC <= 0 || p.Speedup <= 0 {
			t.Errorf("point %+v: non-positive metrics", p)
		}
	}
	if res.Points[0].IPC == res.Points[1].IPC {
		t.Error("rowmajor and sag tiling scored identically; SkipLLC is not reaching the sweep points")
	}
}

func TestSweepTilingAxisErrors(t *testing.T) {
	if _, err := Sweep(SweepParams{Axis: "tiling", Instructions: 1000}); err == nil ||
		!strings.Contains(err.Error(), "requires SweepParams.Workload") {
		t.Errorf("tiling without workload: err = %v", err)
	}
	if _, err := Sweep(SweepParams{
		Axis: "tiling", Values: []int{9},
		Workload:     &WorkloadSpec{Preset: "gpt2s-attn-score"},
		Instructions: 1000,
	}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("tiling value 9: err = %v", err)
	}
	if _, err := Sweep(SweepParams{
		Axis: "cds", Values: []int{1, 2},
		Workload:     &WorkloadSpec{Preset: "nope"},
		Instructions: 1000,
	}); err == nil || !strings.Contains(err.Error(), "unknown workload preset") {
		t.Errorf("bad workload: err = %v", err)
	}
}

// TestSweepBenchmarkAxisStillWorks guards the pre-existing path.
func TestSweepWorkloadOnDesignAxis(t *testing.T) {
	res, err := Sweep(SweepParams{
		Axis: "cds", Values: []int{1, 2},
		Workload:     &WorkloadSpec{Preset: "gpt2s-attn-score"},
		Instructions: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
}
