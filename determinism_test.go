package fgnvm

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunIsByteDeterministic runs the same simulation twice and
// requires byte-identical Result JSON — a stronger check than
// TestRunIsDeterministic's DeepEqual, because it covers the serialized
// form (field ordering, float formatting, omitted fields) with the
// full telemetry subsystem attached. Everything downstream leans on
// this contract: the server's canonical-hash result cache, the
// Perfetto trace byte-identity tests, and fgnvm-sweep's parallel
// workers all assume a run is a pure function of its Options. The
// determinism analyzer in internal/lint enforces the sources of
// nondeterminism it can see statically (wall clock, global rand, map
// iteration); this test catches whatever slips past it.
func TestRunIsByteDeterministic(t *testing.T) {
	opts := Options{
		Design: DesignFgNVM, SAGs: 8, CDs: 2,
		Benchmark: "lbm", Instructions: 20_000, Seed: 7,
		Telemetry: &TelemetryOptions{Attribution: true, Occupancy: true},
	}
	encode := func() []byte {
		r, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	first := encode()
	second := encode()
	if !bytes.Equal(first, second) {
		// Pinpoint the first divergence to make the failure actionable.
		n := len(first)
		if len(second) < n {
			n = len(second)
		}
		i := 0
		for i < n && first[i] == second[i] {
			i++
		}
		lo := i - 40
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("identical Options produced different results; first divergence at byte %d:\n run 1: …%s\n run 2: …%s",
			i, first[lo:min(i+40, len(first))], second[lo:min(i+40, len(second))])
	}
}
