// Differential and property tests for the idle-cycle fast-forward.
//
// The run loop's fast-forward (fgnvm.go) claims to be exact: jumping
// over a provably-idle window and batch-crediting the per-cycle
// accounting must leave every observable output byte-identical to the
// cycle-by-cycle execution. These tests pin that claim across the full
// benchmark × design matrix — including the telemetry stall buckets
// and the exported Perfetto trace — and add the structural properties
// the optimization must not disturb (a 1×1 FgNVM degenerates to the
// baseline bank; cancellation is honored mid-jump).

package fgnvm

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/trace"
)

// ffInstr sizes the differential runs: long enough that every design
// fast-forwards through real write drains (lbm backgrounds hundreds of
// writes at this length), short enough that the 6×12 matrix stays in
// `go test` territory.
const ffInstr = 20_000

// runArtifacts runs one simulation with full telemetry attached and
// returns every observable output: the marshaled Result and the
// exported trace bytes. Any difference between a fast-forwarded and a
// cycle-by-cycle run shows up in one of the two.
func runArtifacts(t *testing.T, o Options) (resJSON, traceBytes []byte) {
	t.Helper()
	var buf bytes.Buffer
	o.Telemetry = &TelemetryOptions{Attribution: true, Occupancy: true, TraceWriter: &buf}
	res, err := Run(o)
	if err != nil {
		t.Fatalf("Run(%v/%s, ff=%v): %v", o.Design, o.Benchmark, !o.DisableFastForward, err)
	}
	j, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return j, buf.Bytes()
}

// TestFastForwardDifferential is the tier-1 exactness gate: every
// benchmark × every design, fast-forwarded vs cycle-by-cycle, must
// produce byte-identical Result JSON (stall buckets, occupancy, energy,
// latency percentiles — everything) and byte-identical trace output.
func TestFastForwardDifferential(t *testing.T) {
	for _, d := range Designs() {
		t.Run(d.String(), func(t *testing.T) {
			for _, bench := range Benchmarks() {
				t.Run(bench, func(t *testing.T) {
					t.Parallel()
					o := Options{Design: d, SAGs: 8, CDs: 2, Benchmark: bench, Instructions: ffInstr}
					ffRes, ffTrace := runArtifacts(t, o)
					o.DisableFastForward = true
					refRes, refTrace := runArtifacts(t, o)
					if !bytes.Equal(ffRes, refRes) {
						t.Errorf("Result diverged under fast-forward:\n  ff : %s\n  ref: %s", ffRes, refRes)
					}
					if !bytes.Equal(ffTrace, refTrace) {
						t.Errorf("trace diverged under fast-forward (%d vs %d bytes)", len(ffTrace), len(refTrace))
					}
				})
			}
		})
	}
}

// TestFastForwardConservation re-checks the stall-attribution
// conservation invariant specifically on fast-forwarded runs: the
// weighted stall events emitted by the batch-crediting path must sum to
// the controller's independently batch-credited queued-wait counter.
func TestFastForwardConservation(t *testing.T) {
	for _, bench := range []string{"lbm", "mcf"} {
		r, err := Run(Options{
			Design: DesignFgNVM, SAGs: 8, CDs: 2, Benchmark: bench, Instructions: ffInstr,
			Telemetry: &TelemetryOptions{Attribution: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Stalls.QueuedWaitCycles == 0 {
			t.Fatalf("%s: no queued waiting; workload too light to test conservation", bench)
		}
		if got := r.Stalls.Sum(); got != r.Stalls.QueuedWaitCycles {
			t.Errorf("%s: attribution leak under fast-forward: causes sum to %d, queued-wait counter says %d",
				bench, got, r.Stalls.QueuedWaitCycles)
		}
	}
}

// TestDegenerateFgNVMMatchesBaseline pins the structural property that
// a 1×1 FgNVM grid with every access mode disabled is the baseline
// bank: one SAG, one CD, full-row sensing, serialized writes. The two
// designs must agree on every timing observable, not approximately but
// exactly — they are the same state machine reached through different
// construction paths.
func TestDegenerateFgNVMMatchesBaseline(t *testing.T) {
	for _, bench := range []string{"lbm", "mcf", "bwaves"} {
		base, err := Run(Options{Design: DesignBaseline, Benchmark: bench, Instructions: ffInstr})
		if err != nil {
			t.Fatal(err)
		}
		deg, err := Run(Options{
			Design: DesignFgNVM, SAGs: 1, CDs: 1, Modes: &AccessModeSet{},
			Benchmark: bench, Instructions: ffInstr,
		})
		if err != nil {
			t.Fatal(err)
		}
		if deg.IPC != base.IPC || deg.Cycles != base.Cycles {
			t.Errorf("%s: 1x1 modes-off FgNVM != baseline: IPC %v vs %v, cycles %d vs %d",
				bench, deg.IPC, base.IPC, deg.Cycles, base.Cycles)
		}
		if deg.Reads != base.Reads || deg.Writes != base.Writes ||
			deg.AvgReadLatency != base.AvgReadLatency || deg.AvgWriteLatency != base.AvgWriteLatency {
			t.Errorf("%s: 1x1 modes-off FgNVM traffic diverged from baseline: %+v vs %+v", bench, deg, base)
		}
	}
}

// TestFastForwardRandomStream drives the differential check with a
// stream shape the profile generators never produce — independently
// seeded addresses, write mix, and gaps from a raw SplitMix64 walk —
// so exactness does not silently depend on the benchmark profiles'
// locality structure.
func TestFastForwardRandomStream(t *testing.T) {
	mk := func() trace.Stream {
		state := uint64(0x5eed)
		next := func() uint64 {
			state += 0x9e3779b97f4a7c15
			z := state
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			return z ^ (z >> 31)
		}
		accs := make([]trace.Access, 4096)
		for i := range accs {
			accs[i] = trace.Access{
				Gap:   uint32(next() % 200),
				Addr:  (next() % (64 << 20)) &^ 63,
				Write: next()%100 < 40,
			}
		}
		return trace.NewSliceStream(accs)
	}
	for _, d := range []Design{DesignBaseline, DesignFgNVM, DesignDRAM} {
		run := func(disable bool) Result {
			r, err := Run(Options{
				Design: d, SAGs: 8, CDs: 2, Stream: mk(),
				Instructions: ffInstr, DisableFastForward: disable,
			})
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		ff, ref := run(false), run(true)
		ffJSON, _ := json.Marshal(ff)
		refJSON, _ := json.Marshal(ref)
		if !bytes.Equal(ffJSON, refJSON) {
			t.Errorf("%v: random-stream run diverged under fast-forward:\n  ff : %s\n  ref: %s", d, ffJSON, refJSON)
		}
	}
}

// countdownCtx is a context whose Err flips to Canceled after a fixed
// number of polls — a deterministic stand-in for "cancelled mid-run"
// that does not depend on wall-clock timing.
type countdownCtx struct {
	context.Context
	left atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return c.Context.Err()
}

// TestFastForwardCancellation pins the fix for cancellation being
// starved across jumps: the run loop polls ctx.Err on mask-aligned
// ticks, and a fast-forward jump can skip every aligned tick in a long
// write drain — so the loop must re-poll after every jump. The test
// cancels deterministically mid-run (at half the total poll count of a
// completed run) on the write-heavy profile, where most of the run is
// fast-forwarded drain windows, and requires the run to stop.
func TestFastForwardCancellation(t *testing.T) {
	opts := Options{Design: DesignFgNVM, SAGs: 8, CDs: 2, Benchmark: "lbm", Instructions: ffInstr}

	// First pass: count how often a full run polls Err.
	probe := &countdownCtx{Context: context.Background()}
	probe.left.Store(1 << 40)
	if _, err := RunContext(probe, opts); err != nil {
		t.Fatal(err)
	}
	polls := (1 << 40) - probe.left.Load()
	if polls < 4 {
		t.Fatalf("run polled ctx.Err only %d times; cannot cancel mid-run", polls)
	}

	// Second pass: cancel halfway. The run must return the context
	// error instead of completing.
	mid := &countdownCtx{Context: context.Background()}
	mid.left.Store(polls / 2)
	_, err := RunContext(mid, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run cancelled mid-drain returned %v, want context.Canceled", err)
	}
}
