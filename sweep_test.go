package fgnvm

import (
	"context"
	"errors"
	"testing"
)

func TestSweepAxisByName(t *testing.T) {
	for _, a := range SweepAxes() {
		got, err := SweepAxisByName(a.Name)
		if err != nil || got.Name != a.Name {
			t.Fatalf("SweepAxisByName(%q) = %v, %v", a.Name, got.Name, err)
		}
		if len(a.Default) == 0 {
			t.Errorf("axis %q has no default values", a.Name)
		}
	}
	if _, err := SweepAxisByName("voltage"); err == nil {
		t.Fatal("unknown axis accepted")
	}
}

func TestSweepShapeAndDeterminism(t *testing.T) {
	p := SweepParams{
		Axis: "cds", Values: []int{1, 4}, Design: DesignFgNVM,
		Benchmark: "mcf", Instructions: tinyInstr, Parallel: 1,
	}
	serial, err := Sweep(p)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Axis != "cds" || len(serial.Points) != 2 {
		t.Fatalf("unexpected sweep result: %+v", serial)
	}
	for i, want := range []int{1, 4} {
		pt := serial.Points[i]
		if pt.Value != want {
			t.Errorf("point %d: value %d, want %d (order must be deterministic)", i, pt.Value, want)
		}
		if pt.IPC <= 0 || pt.Speedup <= 0 {
			t.Errorf("point %d implausible: %+v", i, pt)
		}
	}
	// More CDs never hurt energy at fixed SAGs (Figure 5's direction).
	if serial.Points[1].RelEnergy >= serial.Points[0].RelEnergy {
		t.Errorf("energy not improving with CDs: %.3f -> %.3f",
			serial.Points[0].RelEnergy, serial.Points[1].RelEnergy)
	}

	p.Parallel = 4
	parallel, err := Sweep(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Points {
		if serial.Points[i] != parallel.Points[i] {
			t.Fatalf("point %d differs across parallelism: %+v vs %+v",
				i, serial.Points[i], parallel.Points[i])
		}
	}
}

func TestSweepContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SweepContext(ctx, SweepParams{Axis: "cds", Values: []int{1, 2}, Benchmark: "mcf", Instructions: tinyInstr})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled SweepContext err = %v, want context.Canceled", err)
	}
}
