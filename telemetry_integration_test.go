package fgnvm

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"testing"
)

// telInstr sizes the telemetry integration runs: long enough for the
// write-heavy profile to drive real queue contention, short enough for
// `go test` to stay quick.
const telInstr = 30_000

// runLBM runs the write-heavy profile on an 8×2 FgNVM-family design
// with attribution enabled.
func runLBM(t *testing.T, design Design, modes *AccessModeSet, lanes int) Result {
	t.Helper()
	r, err := Run(Options{
		Design: design, SAGs: 8, CDs: 2, Modes: modes, IssueLanes: lanes,
		Benchmark: "lbm", Instructions: telInstr,
		Telemetry: &TelemetryOptions{Attribution: true, Occupancy: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stalls == nil {
		t.Fatal("telemetry run returned no stall breakdown")
	}
	return r
}

// TestStallAttributionConserved asserts the conservation invariant on
// the paper's 8×2 configuration under the write-heavy profile: every
// cycle a queued request waits is attributed to exactly one cause, so
// the five in-queue buckets sum to the controller's independent
// queued-wait counter.
func TestStallAttributionConserved(t *testing.T) {
	r := runLBM(t, DesignFgNVM, nil, 0)
	s := r.Stalls
	if s.QueuedWaitCycles == 0 {
		t.Fatal("write-heavy run saw no queued waiting; workload too light to test conservation")
	}
	if got := s.Sum(); got != s.QueuedWaitCycles {
		t.Errorf("attribution leak: causes sum to %d, queued-wait counter says %d", got, s.QueuedWaitCycles)
	}
	if len(r.TileOccupancy) != 8 || len(r.TileOccupancy[0]) != 2 {
		t.Fatalf("TileOccupancy shape %dx%d, want 8x2", len(r.TileOccupancy), len(r.TileOccupancy[0]))
	}
	var busy uint64
	for _, row := range r.TileOccupancy {
		for _, v := range row {
			busy += v
		}
	}
	if busy == 0 {
		t.Error("occupancy matrix is all-zero despite completed requests")
	}
}

// TestMultiActivationShiftsStalls asserts the Figure 4 mechanism story:
// with Multi-Activation ablated, waiting concentrates in the SAG/CD
// conflict buckets (tiles serialize behind the single in-flight
// activation); enabling it moves that waiting onto the shared data bus.
func TestMultiActivationShiftsStalls(t *testing.T) {
	noMA := runLBM(t, DesignFgNVM, &AccessModeSet{PartialActivation: true, BackgroundedWrites: true}, 0)
	full := runLBM(t, DesignFgNVM, nil, 0)

	tileNoMA := noMA.Stalls.SAGConflict + noMA.Stalls.CDConflict
	tileFull := full.Stalls.SAGConflict + full.Stalls.CDConflict
	if tileFull >= tileNoMA {
		t.Errorf("Multi-Activation did not reduce tile-conflict stalls: %d (full) vs %d (no MA)", tileFull, tileNoMA)
	}
	busShareNoMA := float64(noMA.Stalls.BusConflict) / float64(noMA.Stalls.Sum())
	busShareFull := float64(full.Stalls.BusConflict) / float64(full.Stalls.Sum())
	if busShareFull <= busShareNoMA {
		t.Errorf("Multi-Activation did not shift waiting onto the bus: share %.3f (full) vs %.3f (no MA)",
			busShareFull, busShareNoMA)
	}
}

// TestMultiIssueDrainsBusConflicts asserts the second half of the
// story: widening the data path (Multi-Issue) drains the bus-conflict
// bucket that full FgNVM piles up.
func TestMultiIssueDrainsBusConflicts(t *testing.T) {
	fg := runLBM(t, DesignFgNVM, nil, 1)
	mi := runLBM(t, DesignFgNVMMultiIssue, nil, 4)
	if mi.Stalls.BusConflict >= fg.Stalls.BusConflict {
		t.Errorf("Multi-Issue did not reduce bus-conflict stalls: %d (4 lanes) vs %d (1 lane)",
			mi.Stalls.BusConflict, fg.Stalls.BusConflict)
	}
}

// traceOptions is the fixed configuration of the determinism and
// validity tests.
func traceOptions(w *bytes.Buffer) Options {
	return Options{
		Design: DesignFgNVM, SAGs: 8, CDs: 2,
		Benchmark: "lbm", Instructions: telInstr,
		Telemetry: &TelemetryOptions{TraceWriter: w},
	}
}

// TestTraceDeterministic asserts two runs with identical Options
// produce byte-identical Perfetto traces.
func TestTraceDeterministic(t *testing.T) {
	digest := func() ([32]byte, int) {
		var buf bytes.Buffer
		r, err := Run(traceOptions(&buf))
		if err != nil {
			t.Fatal(err)
		}
		if r.TraceEvents == 0 {
			t.Fatal("trace run exported no events")
		}
		return sha256.Sum256(buf.Bytes()), buf.Len()
	}
	h1, n1 := digest()
	h2, n2 := digest()
	if h1 != h2 {
		t.Errorf("identical runs produced different traces (%d vs %d bytes)", n1, n2)
	}
}

// TestTraceIsValidChromeTraceJSON asserts the exported trace parses as
// the Chrome trace-event JSON object form and is structurally sound:
// known phase codes, metadata before use, and balanced async
// begin/end pairs per request id.
func TestTraceIsValidChromeTraceJSON(t *testing.T) {
	var buf bytes.Buffer
	res, err := Run(traceOptions(&buf))
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
			ID   string  `json:"id"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit == "" {
		t.Error("missing displayTimeUnit")
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	valid := map[string]bool{"X": true, "M": true, "C": true, "b": true, "e": true, "s": true, "t": true, "f": true}
	open := map[string]int{} // async span balance per id
	var slices, counters, metadata int
	for i, ev := range file.TraceEvents {
		if !valid[ev.Ph] {
			t.Fatalf("event %d: unknown phase %q", i, ev.Ph)
		}
		switch ev.Ph {
		case "X":
			slices++
			if ev.Dur < 0 || ev.TS < 0 {
				t.Fatalf("event %d: negative ts/dur", i)
			}
		case "C":
			counters++
		case "M":
			metadata++
		case "b":
			open[ev.ID]++
		case "e":
			open[ev.ID]--
			if open[ev.ID] < 0 {
				t.Fatalf("event %d: async end %q before begin", i, ev.ID)
			}
		}
	}
	for id, n := range open {
		if n != 0 {
			t.Errorf("async span %q left %d begin(s) unclosed", id, n)
		}
	}
	if slices == 0 {
		t.Error("no command slices in trace")
	}
	if counters == 0 {
		t.Error("no kernel counter samples in trace")
	}
	// Result.TraceEvents counts payload events; metadata is added at
	// export time.
	if payload := len(file.TraceEvents) - metadata; res.TraceEvents != payload {
		t.Errorf("Result.TraceEvents = %d, file has %d payload events", res.TraceEvents, payload)
	}
}
