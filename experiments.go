// Experiment harnesses: one function per table/figure of the paper's
// evaluation section. These are used by cmd/fgnvm-bench and by the
// benchmarks in bench_test.go, so "regenerate Figure 4" is a single
// call everywhere.

package fgnvm

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/area"
	"repro/internal/stats"
)

// ExperimentParams tunes the evaluation runs. The zero value reproduces
// the paper's setup at a simulation length practical for a laptop.
type ExperimentParams struct {
	// Instructions per benchmark run (default 100 000).
	Instructions uint64
	// Seed for the workload generators (default 1).
	Seed uint64
	// Benchmarks to evaluate; nil means the full Figure 4 set.
	Benchmarks []string
	// Parallel is the number of benchmarks simulated concurrently
	// (default: GOMAXPROCS, capped at the benchmark count). Each
	// simulation is single-threaded and deterministic; parallelism is
	// across independent runs, so results are identical at any width.
	Parallel int
}

func (p *ExperimentParams) applyDefaults() {
	if p.Instructions == 0 {
		p.Instructions = 100_000
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Benchmarks == nil {
		p.Benchmarks = Benchmarks()
	}
	if p.Parallel == 0 {
		p.Parallel = runtime.GOMAXPROCS(0)
	}
	if p.Parallel > len(p.Benchmarks) {
		p.Parallel = len(p.Benchmarks)
	}
	if p.Parallel < 1 {
		p.Parallel = 1
	}
}

// forEach runs fn for every benchmark index on a bounded worker pool.
// Workers write into caller-preallocated slots, so output order is
// deterministic regardless of scheduling. All worker errors are
// aggregated (in index order) with errors.Join, so a multi-benchmark
// failure reports every failing run rather than only the first by
// index. Cancelling ctx stops dispatching further work; its error is
// included in the aggregate.
func forEach(ctx context.Context, benchmarks []string, workers int, fn func(i int, bench string) error) error {
	return forEachN(ctx, len(benchmarks), workers, func(i int) error {
		return fn(i, benchmarks[i])
	})
}

// forEachN is the index-only core of forEach, shared with the sweep
// harness: run fn(0..n-1) on a bounded pool and join all errors.
func forEachN(ctx context.Context, n, workers int, fn func(i int) error) error {
	jobs := make(chan int)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				errs[i] = fn(i)
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	return errors.Join(append(errs, ctx.Err())...)
}

// Figure4Row is one benchmark's bar group in Figure 4: IPC speedups
// over the baseline NVM for the three evaluated systems (8×2 FgNVM,
// the idealized 128-banks memory, and FgNVM with multi-issue).
type Figure4Row struct {
	Benchmark       string
	BaselineIPC     float64
	FgNVM           float64 // speedup over baseline
	ManyBanks       float64
	FgNVMMultiIssue float64
}

// Figure4Result is the full figure: per-benchmark rows plus geometric
// means (the paper's summary statistic).
type Figure4Result struct {
	Rows              []Figure4Row
	GeoMeanFgNVM      float64
	GeoMeanManyBanks  float64
	GeoMeanMultiIssue float64
}

// Figure4 reproduces the performance comparison of Figure 4: 8×2 FgNVM,
// a 128-bank memory (8 banks × 8 SAGs × 2 CDs worth of independent
// units), and 8×2 FgNVM with the augmented multi-issue FR-FCFS, all
// normalized to the baseline NVM prototype.
func Figure4(p ExperimentParams) (Figure4Result, error) {
	return Figure4Context(context.Background(), p)
}

// Figure4Context is Figure4 with cancellation: ctx aborts in-flight
// simulations and stops dispatching further benchmarks.
func Figure4Context(ctx context.Context, p ExperimentParams) (Figure4Result, error) {
	p.applyDefaults()
	var out Figure4Result
	out.Rows = make([]Figure4Row, len(p.Benchmarks))
	err := forEach(ctx, p.Benchmarks, p.Parallel, func(i int, bench string) error {
		runOne := func(d Design) (Result, error) {
			return RunContext(ctx, Options{
				Design: d, SAGs: 8, CDs: 2,
				Benchmark: bench, Instructions: p.Instructions, Seed: p.Seed,
			})
		}
		base, err := runOne(DesignBaseline)
		if err != nil {
			return fmt.Errorf("figure4 %s baseline: %w", bench, err)
		}
		rFg, err := runOne(DesignFgNVM)
		if err != nil {
			return fmt.Errorf("figure4 %s fgnvm: %w", bench, err)
		}
		rMb, err := runOne(DesignManyBanks)
		if err != nil {
			return fmt.Errorf("figure4 %s manybanks: %w", bench, err)
		}
		rMi, err := runOne(DesignFgNVMMultiIssue)
		if err != nil {
			return fmt.Errorf("figure4 %s multiissue: %w", bench, err)
		}
		out.Rows[i] = Figure4Row{
			Benchmark:       bench,
			BaselineIPC:     base.IPC,
			FgNVM:           rFg.SpeedupOver(base),
			ManyBanks:       rMb.SpeedupOver(base),
			FgNVMMultiIssue: rMi.SpeedupOver(base),
		}
		return nil
	})
	if err != nil {
		return out, err
	}
	var fg, mb, mi []float64
	for _, row := range out.Rows {
		fg = append(fg, row.FgNVM)
		mb = append(mb, row.ManyBanks)
		mi = append(mi, row.FgNVMMultiIssue)
	}
	if out.GeoMeanFgNVM, err = stats.GeoMean(fg); err != nil {
		return out, err
	}
	if out.GeoMeanManyBanks, err = stats.GeoMean(mb); err != nil {
		return out, err
	}
	if out.GeoMeanMultiIssue, err = stats.GeoMean(mi); err != nil {
		return out, err
	}
	return out, nil
}

// Figure5Row is one benchmark's bar group in Figure 5: total memory
// energy relative to the baseline for the CD sweep, plus the "perfect"
// scaling point (sensing energy ideally divided by the CD count, with
// no write or background penalty).
type Figure5Row struct {
	Benchmark string
	E8x2      float64 // relative energy, 8 SAGs x 2 CDs
	E8x8      float64
	E8x32     float64
	E8x32Perf float64 // ideal: baseline sensing energy / 32
}

// Figure5Result is the full figure with arithmetic-mean reductions
// (the paper reports average reductions of 37 %, 65 % and 73 %).
type Figure5Result struct {
	Rows                       []Figure5Row
	Mean8x2, Mean8x8, Mean8x32 float64 // mean relative energy
}

// Figure5 reproduces the energy comparison of Figure 5: FgNVM designs
// with 2, 8, and 32 column divisions (8 SAGs each) normalized to the
// baseline that senses the full row buffer on every activation.
func Figure5(p ExperimentParams) (Figure5Result, error) {
	return Figure5Context(context.Background(), p)
}

// Figure5Context is Figure5 with cancellation: ctx aborts in-flight
// simulations and stops dispatching further benchmarks.
func Figure5Context(ctx context.Context, p ExperimentParams) (Figure5Result, error) {
	p.applyDefaults()
	var out Figure5Result
	out.Rows = make([]Figure5Row, len(p.Benchmarks))
	err := forEach(ctx, p.Benchmarks, p.Parallel, func(i int, bench string) error {
		base, err := RunContext(ctx, Options{
			Design: DesignBaseline, Benchmark: bench,
			Instructions: p.Instructions, Seed: p.Seed,
		})
		if err != nil {
			return fmt.Errorf("figure5 %s baseline: %w", bench, err)
		}
		row := Figure5Row{Benchmark: bench}
		for _, cfg := range []struct {
			cds  int
			dest *float64
		}{{2, &row.E8x2}, {8, &row.E8x8}, {32, &row.E8x32}} {
			r, err := RunContext(ctx, Options{
				Design: DesignFgNVM, SAGs: 8, CDs: cfg.cds,
				Benchmark: bench, Instructions: p.Instructions, Seed: p.Seed,
			})
			if err != nil {
				return fmt.Errorf("figure5 %s 8x%d: %w", bench, cfg.cds, err)
			}
			*cfg.dest = r.RelativeEnergy(base)
		}
		// "8x32 Perfect": the ideal factor-of-two-per-doubling scaling
		// the paper describes — sensing energy divided by the CD count,
		// without the write-energy floor or background power.
		if base.Energy.TotalPJ > 0 {
			row.E8x32Perf = base.Energy.ReadPJ / 32 / base.Energy.TotalPJ
		}
		out.Rows[i] = row
		return nil
	})
	if err != nil {
		return out, err
	}
	var e2, e8, e32 []float64
	for _, row := range out.Rows {
		e2 = append(e2, row.E8x2)
		e8 = append(e8, row.E8x8)
		e32 = append(e32, row.E8x32)
	}
	out.Mean8x2 = stats.Mean(e2)
	out.Mean8x8 = stats.Mean(e8)
	out.Mean8x32 = stats.Mean(e32)
	return out, nil
}

// Table1Row is one component row of the area-overhead table.
type Table1Row struct {
	Component   string
	AvgUm2      float64 // 8×8 FgNVM
	MaxUm2      float64 // 32×32 FgNVM
	PaperAvgUm2 float64 // the published value, for side-by-side output
	PaperMaxUm2 float64
}

// Table1 reproduces the area-overhead summary (Section 5.1) from the
// analytic model in internal/area, alongside the published values.
func Table1() []Table1Row {
	avg := area.PaperAverage()
	max := area.PaperMaximum()
	return []Table1Row{
		{Component: "Row Decoder (delta %)", AvgUm2: avg.RowDecoderDeltaPct, MaxUm2: max.RowDecoderDeltaPct},
		{Component: "Row Latches", AvgUm2: avg.RowLatchesUm2, MaxUm2: max.RowLatchesUm2, PaperAvgUm2: 2325, PaperMaxUm2: 9333},
		{Component: "CSL Latches", AvgUm2: avg.CSLLatchesUm2, MaxUm2: max.CSLLatchesUm2, PaperAvgUm2: 636.3, PaperMaxUm2: 4242},
		{Component: "LY-SEL Lines", AvgUm2: avg.YSelLinesUm2, MaxUm2: max.YSelLinesUm2, PaperAvgUm2: 0, PaperMaxUm2: 0.1e6},
		{Component: "Total", AvgUm2: avg.TotalUm2, MaxUm2: max.TotalUm2, PaperAvgUm2: 2961, PaperMaxUm2: 0.11e6},
	}
}

// SummaryResult aggregates the paper's headline claims against the
// reproduction: average combined performance improvement (the paper
// reports 56.5 %) and the energy reductions (37/65/73 %).
type SummaryResult struct {
	Fig4 Figure4Result
	Fig5 Figure5Result

	// PerfImprovementPct is the geometric-mean improvement of the best
	// combined design (FgNVM + Multi-Issue) over the baseline.
	PerfImprovementPct float64
	// EnergyReduction percentages for the three CD sweeps.
	Energy8x2Pct, Energy8x8Pct, Energy8x32Pct float64
}

// Summary runs both figures and derives the headline numbers.
func Summary(p ExperimentParams) (SummaryResult, error) {
	return SummaryContext(context.Background(), p)
}

// StallStoryRow is one design point of the stall-attribution
// experiment: where queued requests spent their waiting cycles under
// that design, plus its IPC for context.
type StallStoryRow struct {
	Label  string
	Design Design
	IPC    float64
	Stalls StallBreakdown
}

// StallStoryResult is the full experiment: the Section 4 serialization
// story told by the attribution engine on one write-heavy benchmark.
type StallStoryResult struct {
	Benchmark string
	Rows      []StallStoryRow
}

// StallStory runs the stall-attribution experiment on a write-heavy
// benchmark (default lbm): the baseline bank, 8×2 FgNVM with
// Multi-Activation ablated, full 8×2 FgNVM, and FgNVM with Multi-Issue.
// The expected mechanism (asserted by the regression tests, reported in
// EXPERIMENTS.md): Multi-Activation moves stalls out of the SAG/CD
// conflict buckets into bus-conflict, and Multi-Issue drains the
// bus-conflict bucket.
func StallStory(p ExperimentParams) (StallStoryResult, error) {
	return StallStoryContext(context.Background(), p)
}

// StallStoryContext is StallStory with cancellation. Only the first
// entry of p.Benchmarks is used (default "lbm", the write-heaviest
// profile, where write-induced serialization is starkest).
func StallStoryContext(ctx context.Context, p ExperimentParams) (StallStoryResult, error) {
	if p.Benchmarks == nil {
		p.Benchmarks = []string{"lbm"}
	}
	p.applyDefaults()
	out := StallStoryResult{Benchmark: p.Benchmarks[0]}
	noMA := &AccessModeSet{PartialActivation: true, BackgroundedWrites: true}
	points := []struct {
		label  string
		design Design
		modes  *AccessModeSet
	}{
		{"baseline", DesignBaseline, nil},
		{"fgnvm-noMA", DesignFgNVM, noMA},
		{"fgnvm", DesignFgNVM, nil},
		{"fgnvm-multiissue", DesignFgNVMMultiIssue, nil},
	}
	out.Rows = make([]StallStoryRow, len(points))
	err := forEachN(ctx, len(points), min(p.Parallel, len(points)), func(i int) error {
		pt := points[i]
		r, err := RunContext(ctx, Options{
			Design: pt.design, SAGs: 8, CDs: 2, Modes: pt.modes,
			Benchmark: out.Benchmark, Instructions: p.Instructions, Seed: p.Seed,
			Telemetry: &TelemetryOptions{Attribution: true},
		})
		if err != nil {
			return fmt.Errorf("stallstory %s: %w", pt.label, err)
		}
		row := StallStoryRow{Label: pt.label, Design: pt.design, IPC: r.IPC}
		if r.Stalls != nil {
			row.Stalls = *r.Stalls
		}
		out.Rows[i] = row
		return nil
	})
	return out, err
}

// SummaryContext is Summary with cancellation.
func SummaryContext(ctx context.Context, p ExperimentParams) (SummaryResult, error) {
	var s SummaryResult
	var err error
	if s.Fig4, err = Figure4Context(ctx, p); err != nil {
		return s, err
	}
	if s.Fig5, err = Figure5Context(ctx, p); err != nil {
		return s, err
	}
	s.PerfImprovementPct = (s.Fig4.GeoMeanMultiIssue - 1) * 100
	s.Energy8x2Pct = (1 - s.Fig5.Mean8x2) * 100
	s.Energy8x8Pct = (1 - s.Fig5.Mean8x8) * 100
	s.Energy8x32Pct = (1 - s.Fig5.Mean8x32) * 100
	return s, nil
}
