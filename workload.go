// Workload specs: the public, JSON-friendly description of a GEMM/GEMV
// workload that Options.Workload, the sweep API, and the HTTP server
// all share. A spec names either an LLM-layer preset or an explicit
// shape, plus the tiling strategy; internal/gemm does the lowering.

package fgnvm

import (
	"fmt"
	"strings"

	"repro/internal/gemm"
)

// WorkloadSpec selects a GEMM/GEMV workload. Set either Preset (a name
// from WorkloadPresets) or an explicit M, K, N shape — not both. The
// zero knobs take the lowering defaults (fp16 words, 32×64×64 tiles,
// gap 4, SAG-aligned tiling).
type WorkloadSpec struct {
	// Preset names an LLM-layer shape (see WorkloadPresets).
	Preset string `json:"preset,omitempty"`

	// Explicit shape: C[M,N] (+)= A[M,K] × B[K,N]; N = 1 is a GEMV.
	M int `json:"m,omitempty"`
	K int `json:"k,omitempty"`
	N int `json:"n,omitempty"`
	// WordBytes is the element size (default 2 — fp16).
	WordBytes int `json:"word_bytes,omitempty"`
	// Accumulate selects read-modify-write output traffic.
	Accumulate bool `json:"accumulate,omitempty"`

	// Tiling names the lowering strategy: "rowmajor", "sag", "cd" or
	// "outstat" (see WorkloadTilings). Default "sag".
	Tiling string `json:"tiling,omitempty"`

	// Tile block sizes (defaults 32×64×64, clamped to the shape).
	TileM int `json:"tile_m,omitempty"`
	TileK int `json:"tile_k,omitempty"`
	TileN int `json:"tile_n,omitempty"`

	// Gap is the instruction gap between accesses (default 4).
	Gap int `json:"gap,omitempty"`
}

// WorkloadPresets returns the available preset names.
func WorkloadPresets() []string { return gemm.PresetNames() }

// WorkloadTilings returns the tiling strategy names in a stable order.
func WorkloadTilings() []string {
	ts := gemm.Tilings()
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.String()
	}
	return out
}

// resolve converts the spec to a gemm.Spec (without filling lowering
// defaults — gemm.Partition does that).
func (w WorkloadSpec) resolve() (gemm.Spec, error) {
	var sp gemm.Spec
	if w.Preset != "" {
		if w.M != 0 || w.K != 0 || w.N != 0 || w.WordBytes != 0 || w.Accumulate {
			return sp, fmt.Errorf("fgnvm: workload: set either Preset or an explicit shape, not both")
		}
		p, ok := gemm.PresetByName(w.Preset)
		if !ok {
			return sp, fmt.Errorf("fgnvm: unknown workload preset %q (want one of %s)",
				w.Preset, strings.Join(gemm.PresetNames(), ", "))
		}
		sp = p
	} else {
		if w.M < 1 || w.K < 1 || w.N < 1 {
			return sp, fmt.Errorf("fgnvm: workload: set Preset or a positive M, K, N shape")
		}
		sp.Shape = gemm.Shape{M: w.M, K: w.K, N: w.N, WordBytes: w.WordBytes, Accumulate: w.Accumulate}
	}
	tiling := w.Tiling
	if tiling == "" {
		tiling = gemm.TilingSAGAligned.String()
	}
	t, err := gemm.ParseTiling(tiling)
	if err != nil {
		return sp, fmt.Errorf("fgnvm: workload: %w", err)
	}
	sp.Tiling = t
	if w.TileM != 0 {
		sp.TileM = w.TileM
	}
	if w.TileK != 0 {
		sp.TileK = w.TileK
	}
	if w.TileN != 0 {
		sp.TileN = w.TileN
	}
	if w.Gap != 0 {
		sp.Gap = w.Gap
	}
	return sp, nil
}

// Canonical validates the spec and returns it with every default made
// explicit — the form cache keys hash, so equivalent specs collide.
// Preset specs keep the preset name and leave the shape fields zero
// (the preset already pins them).
func (w WorkloadSpec) Canonical() (WorkloadSpec, error) {
	sp, err := w.resolve()
	if err != nil {
		return WorkloadSpec{}, err
	}
	sp = sp.WithDefaults()
	if err := sp.Validate(); err != nil {
		return WorkloadSpec{}, err
	}
	out := WorkloadSpec{
		Tiling: sp.Tiling.String(),
		TileM:  sp.TileM, TileK: sp.TileK, TileN: sp.TileN,
		Gap: sp.Gap,
	}
	if w.Preset != "" {
		out.Preset = w.Preset
	} else {
		out.M, out.K, out.N = sp.M, sp.K, sp.N
		out.WordBytes = sp.WordBytes
		out.Accumulate = sp.Accumulate
	}
	return out, nil
}

// label is the tiling-independent display name of the workload (for
// sweep results, where the tiling may be the swept axis).
func (w WorkloadSpec) label() string {
	if w.Preset != "" {
		return w.Preset
	}
	sp, err := w.resolve()
	if err != nil {
		return "gemm"
	}
	return sp.ShapeName()
}
