package fgnvm_test

import (
	"fmt"

	fgnvm "repro"
)

// ExampleRun shows the minimal comparison the library exists for: the
// baseline NVM prototype against the FgNVM design on one benchmark.
// Simulations are deterministic, so the output is stable.
func ExampleRun() {
	base, err := fgnvm.Run(fgnvm.Options{
		Design:       fgnvm.DesignBaseline,
		Benchmark:    "mcf",
		Instructions: 20_000,
	})
	if err != nil {
		panic(err)
	}
	fg, err := fgnvm.Run(fgnvm.Options{
		Design:       fgnvm.DesignFgNVM,
		SAGs:         8,
		CDs:          8,
		Benchmark:    "mcf",
		Instructions: 20_000,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("speedup %.2fx, relative energy %.2f\n",
		fg.SpeedupOver(base), fg.RelativeEnergy(base))
	// Output: speedup 1.38x, relative energy 0.25
}

// ExampleTable1 regenerates the paper's area-overhead table.
func ExampleTable1() {
	for _, row := range fgnvm.Table1() {
		if row.Component == "Total" {
			fmt.Printf("%s: avg %.0f µm², max %.0f µm²\n",
				row.Component, row.AvgUm2, row.MaxUm2)
		}
	}
	// Output: Total: avg 2961 µm², max 113627 µm²
}

// ExampleOptions_modes isolates a single access mode for an ablation.
func ExampleOptions_modes() {
	r, err := fgnvm.Run(fgnvm.Options{
		Design:       fgnvm.DesignFgNVM,
		SAGs:         8,
		CDs:          8,
		Benchmark:    "mcf",
		Instructions: 20_000,
		Modes:        &fgnvm.AccessModeSet{PartialActivation: true},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("partial activation only: %d partial senses, %d reads\n",
		r.Activations, r.Reads)
	// Output: partial activation only: 713 partial senses, 713 reads
}
